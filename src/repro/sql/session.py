"""SQL session: binds parsed statements to the ledger database and runs them.

A session carries optional explicit-transaction state (``BEGIN`` ...
``COMMIT``); statements outside an explicit transaction auto-commit, like a
default SQL Server session.  SELECT statements against ``<table>_ledger``
names read the corresponding ledger view as a virtual table.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.engine.expressions import as_predicate
from repro.engine.operators import (
    aggregate,
    insert_rows,
    limit_rows,
    seq_scan,
    sort_rows,
)
from repro.engine.schema import Column, IndexDefinition, TableSchema
from repro.engine.transaction import Transaction
from repro.engine.types import type_from_name
from repro.errors import SqlBindError
from repro.obs.profiler import set_thread_role
from repro.runtime import DEFAULT_CONTEXT
from repro.sql import ast
from repro.sql.parser import parse

def _sql_metrics(reg):
    class _Families:
        statements = reg.counter(
            "sql_statements_total",
            "SQL statements executed, by statement kind",
            ("kind",),
        )
        parse_seconds = reg.histogram(
            "sql_parse_seconds", "SQL lex+parse latency"
        )
        execute_seconds = reg.histogram(
            "sql_execute_seconds", "SQL bind+execute latency, by statement kind",
            ("kind",),
        )
        parses = reg.counter(
            "sql_parses_total",
            "Statements actually lexed+parsed (prepared-cache misses)",
        )
        prepared = reg.counter(
            "sql_prepared_cache_total",
            "Prepared-statement cache lookups, by result",
            ("result",),
        )

    return _Families


class SqlSession:
    """Executes SQL statements against one :class:`LedgerDatabase`."""

    def __init__(self, db, username: str = "app_user") -> None:
        self._db = db
        self._username = username
        self._ctx = getattr(db, "context", None) or DEFAULT_CONTEXT
        self._obs = self._ctx.obs
        self._m = self._ctx.metrics.handles("sql", _sql_metrics)
        # Sessions are thread-affine (one per worker thread in the bench
        # drivers), so construction is the thread's natural role tag.
        set_thread_role(self._ctx.scoped("sql-session"))
        self._txn: Optional[Transaction] = None
        #: Ledger payload of the session's most recent commit (block id,
        #: ordinal, serialized entry) — lets concurrent drivers attribute
        #: per-commit latency to the slot the transaction landed in.
        self.last_commit_payload: Optional[Dict[str, Any]] = None

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def _parse_cached(self, statement_text: str):
        """Parse via the database's shared prepared-statement cache.

        Parsing is schema-independent (names bind at execution), so the AST
        for a given statement text is reusable until DDL bumps the cache
        epoch.  Repeat statements — harness loops, TPC-C drivers — skip the
        lexer and parser entirely.
        """
        cache = getattr(self._db, "statement_cache", None)
        if cache is not None:
            statement = cache.get(statement_text)
            if statement is not None:
                self._m.prepared.labels("hit").inc()
                return statement
            self._m.prepared.labels("miss").inc()
        started = time.perf_counter()
        with self._obs.tracer.span("sql.parse"):
            statement = parse(statement_text)
        self._m.parse_seconds.observe(time.perf_counter() - started)
        self._m.parses.inc()
        if cache is not None:
            cache.put(statement_text, statement)
        return statement

    def execute(self, statement_text: str):
        """Parse and run one statement.

        Sessions are single-threaded but many sessions may execute
        concurrently: writes run under the ledger's storage lock (the
        storage engine is not thread-safe), while the sequencer and entry
        queue advance under their own stage locks.  Parsing touches no
        shared state, so it happens *before* the lock is taken — statements
        queued behind a long scan parse concurrently instead of serially.
        Read-only statements never hold the storage lock across execution:
        :meth:`_source_rows` takes it just long enough to materialize a
        snapshot, and filtering/joins/sorts run lock-free on the copy.

        Returns rows (list of dicts) for SELECT, an affected-row count for
        DML, and None for DDL / transaction control.
        """
        tracer = self._obs.tracer
        with tracer.span("sql.statement") as stmt_span:
            statement = self._parse_cached(statement_text)
            kind = type(statement).__name__
            stmt_span.set_attribute("kind", kind)
            self._m.statements.labels(kind).inc()
            handler = self._HANDLERS[type(statement)]
            started = time.perf_counter()
            if type(statement) is ast.Select:
                with tracer.span("sql.execute", kind=kind):
                    result = handler(self, statement)
            else:
                with self._db.ledger_lock, tracer.span(
                    "sql.execute", kind=kind
                ):
                    result = handler(self, statement)
            self._m.execute_seconds.labels(kind).observe(
                time.perf_counter() - started
            )
            return result

    def executemany(self, statement_text: str, param_rows) -> int:
        """Run a parameterized INSERT once per parameter row, batched.

        The statement is parsed once (through the prepared cache); each row
        in ``param_rows`` binds the ``?`` placeholders in order.  All bound
        rows are inserted by ONE storage operation in ONE transaction (or
        the session's open transaction), so a 100-row ``executemany`` costs
        one parse, one batched insert and one WAL frame instead of 100.
        """
        statement = self._parse_cached(statement_text)
        if not isinstance(statement, ast.Insert):
            raise SqlBindError(
                "executemany() supports INSERT statements only"
            )
        param_rows = list(param_rows)
        expected = 0
        for template in statement.rows:
            for value in template:
                if isinstance(value, ast.Parameter):
                    expected = max(expected, value.index + 1)
        bound_rows: List[tuple] = []
        for values in param_rows:
            if len(values) != expected:
                raise SqlBindError(
                    f"statement has {expected} parameter(s) but "
                    f"{len(values)} value(s) were supplied"
                )
            for template in statement.rows:
                bound_rows.append(tuple(
                    values[v.index] if isinstance(v, ast.Parameter) else v
                    for v in template
                ))
        if not bound_rows:
            return 0
        tracer = self._obs.tracer
        with tracer.span("sql.statement") as stmt_span:
            kind = type(statement).__name__
            stmt_span.set_attribute("kind", kind)
            stmt_span.set_attribute("rows", len(bound_rows))
            self._m.statements.labels(kind).inc()
            table = self._db.engine.table(statement.table)
            started = time.perf_counter()
            with self._db.ledger_lock, tracer.span(
                "sql.execute", kind=kind
            ):
                result = self._autocommit(
                    lambda txn: self._insert_bound_rows(
                        txn, table, statement.columns, bound_rows
                    )
                )
            self._m.execute_seconds.labels(kind).observe(
                time.perf_counter() - started
            )
            return result

    # ------------------------------------------------------------------
    # Transaction control
    # ------------------------------------------------------------------

    def _run_begin(self, stmt: ast.BeginTransaction):
        if self._txn is not None:
            raise SqlBindError("a transaction is already in progress")
        self._txn = self._db.begin(self._username)
        return None

    def _run_commit(self, stmt: ast.CommitTransaction):
        if self._txn is None:
            raise SqlBindError("no transaction in progress")
        self.last_commit_payload = self._db.commit(self._txn)
        self._txn = None
        return None

    def _run_rollback(self, stmt: ast.RollbackTransaction):
        if self._txn is None:
            raise SqlBindError("no transaction in progress")
        if stmt.savepoint is not None:
            self._db.rollback_to_savepoint(self._txn, stmt.savepoint)
            return None
        self._db.rollback(self._txn)
        self._txn = None
        return None

    def _run_save(self, stmt: ast.SaveTransaction):
        if self._txn is None:
            raise SqlBindError("no transaction in progress")
        self._db.savepoint(self._txn, stmt.name)
        return None

    def abort(self) -> None:
        """Roll back the open transaction, if any; no-op otherwise.

        Table locks are held until commit/rollback, so whoever owns a
        session MUST call this when discarding it mid-transaction (e.g. a
        server tearing down a disconnected client) or the locks leak until
        process exit.
        """
        if self._txn is None:
            return
        txn, self._txn = self._txn, None
        self._db.rollback(txn)

    def _autocommit(self, work):
        """Run ``work(txn)`` in the open transaction or a one-shot one."""
        if self._txn is not None:
            return work(self._txn)
        txn = self._db.begin(self._username)
        try:
            result = work(txn)
        except Exception:
            self._db.rollback(txn)
            raise
        self.last_commit_payload = self._db.commit(txn)
        return result

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    @staticmethod
    def _build_column(definition: ast.ColumnDef) -> Column:
        sql_type = type_from_name(definition.type_name, definition.type_args)
        return Column(definition.name, sql_type, nullable=definition.nullable)

    def _invalidate_statements(self) -> None:
        """Flush the shared prepared-statement cache after DDL."""
        cache = getattr(self._db, "statement_cache", None)
        if cache is not None:
            cache.invalidate()

    def _run_create_table(self, stmt: ast.CreateTable):
        schema = TableSchema(
            stmt.table,
            [self._build_column(c) for c in stmt.columns],
            primary_key=stmt.primary_key or None,
        )
        if stmt.ledger:
            ledger_type = "append_only" if stmt.append_only else "updateable"
            self._db.create_ledger_table(schema, ledger_type=ledger_type)
        else:
            self._db.create_table(schema)
        self._invalidate_statements()
        return None

    def _run_create_index(self, stmt: ast.CreateIndex):
        self._db.create_index(
            stmt.table,
            IndexDefinition(stmt.index, tuple(stmt.columns), unique=stmt.unique),
        )
        self._invalidate_statements()
        return None

    def _run_drop_index(self, stmt: ast.DropIndex):
        self._db.drop_index(stmt.table, stmt.index)
        self._invalidate_statements()
        return None

    def _run_drop_table(self, stmt: ast.DropTable):
        table = self._db.engine.table(stmt.table)
        if table.options.get("role") == "ledger":
            self._db.drop_ledger_table(stmt.table)
        else:
            self._db.engine.drop_table_physical(stmt.table)
        self._invalidate_statements()
        return None

    def _run_add_column(self, stmt: ast.AlterAddColumn):
        column = self._build_column(stmt.column)
        table = self._db.engine.table(stmt.table)
        if table.options.get("role") == "ledger":
            self._db.add_column(stmt.table, column)
        else:
            self._db.engine.replace_table_schema(
                table.table_id, table.schema.with_column_added(column)
            )
        self._invalidate_statements()
        return None

    def _run_drop_column(self, stmt: ast.AlterDropColumn):
        table = self._db.engine.table(stmt.table)
        if table.options.get("role") == "ledger":
            self._db.drop_column(stmt.table, stmt.column)
        else:
            self._db.engine.replace_table_schema(
                table.table_id, table.schema.with_column_dropped(stmt.column)
            )
        self._invalidate_statements()
        return None

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _insert_bound_rows(self, txn, table, columns, rows) -> int:
        """Insert fully-bound value rows as one batched storage operation."""
        if columns:
            physical = []
            for values in rows:
                if len(values) != len(columns):
                    raise SqlBindError(
                        "INSERT value count does not match column list"
                    )
                physical.append(
                    table.schema.row_from_mapping(dict(zip(columns, values)))
                )
            table.insert_many(txn, physical)
            return len(physical)
        return insert_rows(txn, table, rows)

    def _run_insert(self, stmt: ast.Insert):
        for values in stmt.rows:
            for value in values:
                if isinstance(value, ast.Parameter):
                    raise SqlBindError(
                        "statement has unbound parameters; "
                        "use executemany() to supply values"
                    )
        table = self._db.engine.table(stmt.table)
        return self._autocommit(
            lambda txn: self._insert_bound_rows(
                txn, table, stmt.columns, stmt.rows
            )
        )

    def _run_update(self, stmt: ast.Update):
        assignments = {name: expr for name, expr in stmt.assignments}
        return self._autocommit(
            lambda txn: self._db.update(txn, stmt.table, assignments, stmt.where)
        )

    def _run_delete(self, stmt: ast.Delete):
        return self._autocommit(
            lambda txn: self._db.delete(txn, stmt.table, stmt.where)
        )

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _source_rows(self, table_name: str) -> List[Dict[str, Any]]:
        """Materialize a snapshot of a table or ledger view.

        This is the only place a SELECT touches the storage lock: held just
        long enough to copy the rows out, so filters, joins and sorts run
        on the snapshot without blocking writers.
        """
        db = self._db
        if db.engine.has_table(table_name):
            with db.ledger_lock:
                table = db.engine.table(table_name)
                return [named for _, named in seq_scan(table)]
        # Virtual ledger views: <table>_ledger.
        if table_name.endswith("_ledger"):
            base = table_name[: -len("_ledger")]
            if db.engine.has_table(base):
                with db.ledger_lock:
                    return db.ledger_view(base)
        raise SqlBindError(f"unknown table or view {table_name!r}")

    def _aliased_rows(
        self, table_name: str, alias: str
    ) -> List[Dict[str, Any]]:
        """Source rows carrying both qualified (``alias.col``) and bare keys."""
        rows = []
        for source in self._source_rows(table_name):
            row = {f"{alias}.{name}": value for name, value in source.items()}
            row.update(source)
            rows.append(row)
        return rows

    def _join_rows(self, stmt: ast.Select) -> List[Dict[str, Any]]:
        """Nested-loop joins, left to right (INNER and LEFT OUTER)."""
        left_alias = stmt.alias or stmt.table
        rows = self._aliased_rows(stmt.table, left_alias)
        for join in stmt.joins:
            right_rows = self._aliased_rows(join.table, join.alias)
            right_columns = set()
            for right in right_rows:
                right_columns.update(right)
            predicate = as_predicate(join.on)
            joined: List[Dict[str, Any]] = []
            for left in rows:
                matched = False
                for right in right_rows:
                    # Qualified keys never collide; ambiguous bare keys
                    # resolve to the leftmost source (first wins).
                    combined = {**right, **left}
                    if predicate(combined):
                        joined.append(combined)
                        matched = True
                if join.left_outer and not matched:
                    padded = dict(left)
                    padded.update(
                        {k: None for k in right_columns if k not in padded}
                    )
                    joined.append(padded)
            rows = joined
        return rows

    def _run_select(self, stmt: ast.Select):
        if stmt.joins:
            rows: Any = iter(self._join_rows(stmt))
        elif stmt.alias:
            rows = iter(self._aliased_rows(stmt.table, stmt.alias))
        else:
            rows = iter(self._source_rows(stmt.table))
        if stmt.where is not None:
            predicate = as_predicate(stmt.where)
            rows = (row for row in rows if predicate(row))

        has_aggregates = any(item.aggregate for item in stmt.items)
        if has_aggregates or stmt.group_by:
            aggregates = [
                (item.alias, item.aggregate, item.aggregate_column)
                for item in stmt.items
                if item.aggregate
            ]
            plain = [item for item in stmt.items if not item.aggregate]
            for item in plain:
                name = getattr(item.expression, "name", None)
                candidates = {name, item.alias}
                if name and "." in name:
                    candidates.add(name.split(".", 1)[1])
                if not candidates & set(stmt.group_by):
                    raise SqlBindError(
                        f"column {item.alias!r} must appear in GROUP BY"
                    )
            rows = aggregate(rows, list(stmt.group_by), aggregates)
            if plain:
                # Re-expose grouped columns under their select aliases.
                alias_map = {
                    item.alias: getattr(item.expression, "name", item.alias)
                    for item in plain
                }
                rows = (
                    {
                        **row,
                        **{
                            alias: row.get(source, row.get(
                                source.split(".", 1)[-1]))
                            for alias, source in alias_map.items()
                        },
                    }
                    for row in rows
                )
            if stmt.order_by:
                rows = sort_rows(rows, list(stmt.order_by))
            if stmt.limit is not None:
                rows = limit_rows(rows, stmt.limit)
            return list(rows)

        # Non-aggregated path: ORDER BY may reference source columns that
        # the projection drops, so sort before projecting (SQL semantics).
        if stmt.order_by:
            rows = sort_rows(rows, list(stmt.order_by))
        if stmt.limit is not None:
            rows = limit_rows(rows, stmt.limit)
        if stmt.items:
            outputs = [(item.alias, item.expression) for item in stmt.items]
            rows = (
                {alias: expr.evaluate(row) for alias, expr in outputs}
                for row in rows
            )
        return list(rows)

    _HANDLERS = {
        ast.BeginTransaction: _run_begin,
        ast.CommitTransaction: _run_commit,
        ast.RollbackTransaction: _run_rollback,
        ast.SaveTransaction: _run_save,
        ast.CreateTable: _run_create_table,
        ast.CreateIndex: _run_create_index,
        ast.DropIndex: _run_drop_index,
        ast.DropTable: _run_drop_table,
        ast.AlterAddColumn: _run_add_column,
        ast.AlterDropColumn: _run_drop_column,
        ast.Insert: _run_insert,
        ast.Update: _run_update,
        ast.Delete: _run_delete,
        ast.Select: _run_select,
    }

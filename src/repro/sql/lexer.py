"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT", "ASC", "DESC",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "DROP",
    "ALTER", "TABLE", "INDEX", "UNIQUE", "ADD", "COLUMN", "ON", "WITH",
    "PRIMARY", "KEY", "NOT", "NULL", "AND", "OR", "IS", "IN", "AS",
    "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "SAVE", "TO", "LEDGER",
    "APPEND_ONLY", "COUNT", "SUM", "MIN", "MAX", "AVG", "TRUE", "FALSE",
    "JOIN", "INNER", "LEFT", "BETWEEN", "LIKE",
}

# Token kinds.
IDENT = "IDENT"
KEYWORD = "KEYWORD"
NUMBER = "NUMBER"
STRING = "STRING"
OPERATOR = "OPERATOR"
PUNCT = "PUNCT"
PARAM = "PARAM"
END = "END"

_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCTUATION = "(),."


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def matches(self, kind: str, value: str = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value.upper() == value.upper()

    def __str__(self) -> str:
        return f"{self.value!r}" if self.kind != END else "end of input"


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    line, column = 1, 1
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch.isspace():
            index += 1
            column += 1
            continue
        if text.startswith("--", index):  # line comment
            while index < length and text[index] != "\n":
                index += 1
            continue
        start_column = column
        if ch == "'":
            value, consumed = _read_string(text, index, line, start_column)
            tokens.append(Token(STRING, value, line, start_column))
            index += consumed
            column += consumed
            continue
        if ch.isdigit() or (ch == "." and index + 1 < length and text[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token(NUMBER, text[index:end], line, start_column))
            column += end - index
            index = end
            continue
        if ch.isalpha() or ch == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            kind = KEYWORD if word.upper() in KEYWORDS else IDENT
            tokens.append(Token(kind, word, line, start_column))
            column += end - index
            index = end
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, index):
                tokens.append(Token(OPERATOR, op, line, start_column))
                index += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(PUNCT, ch, line, start_column))
            index += 1
            column += 1
            continue
        if ch == "?":
            tokens.append(Token(PARAM, "?", line, start_column))
            index += 1
            column += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(END, "", line, column))
    return tokens


def _read_string(text: str, start: int, line: int, column: int):
    """Read a single-quoted string with '' as the escape for a quote."""
    index = start + 1
    chars = []
    while index < len(text):
        ch = text[index]
        if ch == "'":
            if text.startswith("''", index):
                chars.append("'")
                index += 2
                continue
            return "".join(chars), index - start + 1
        if ch == "\n":
            break
        chars.append(ch)
        index += 1
    raise SqlSyntaxError("unterminated string literal", line, column)

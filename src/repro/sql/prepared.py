"""Prepared-statement cache: skip lexing+parsing on repeat statement text.

Parsing in this SQL front-end is schema-independent — name resolution and
type checking happen at execution time — so a parsed AST (every node a
frozen dataclass the handlers never mutate) can be reused verbatim whenever
the exact statement text comes back.  Harness loops and TPC-C drivers send
the same statement shapes thousands of times; caching the AST turns the
per-statement lex+parse cost into a dictionary hit.

The cache is still schema-epoch-invalidated: DDL (``ALTER TABLE``, ``DROP
TABLE``, ...) bumps the epoch, which atomically discards every cached
statement.  Strictly the ASTs would remain valid — binding re-resolves
names per execution — but invalidating on DDL keeps the cache's contract
obvious and makes stale-plan bugs structurally impossible if binding ever
moves into the plan.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

DEFAULT_CAPACITY = 512


class StatementCache:
    """Bounded, thread-safe LRU mapping statement text to its parsed AST.

    One instance hangs off each :class:`~repro.core.ledger_database.
    LedgerDatabase`, shared by every session, so a DDL statement issued
    through any session invalidates the plans of all of them.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("statement cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._epoch = 0
        self._lock = threading.Lock()
        self._data: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def epoch(self) -> int:
        """Schema epoch; bumped (and the cache emptied) on every DDL."""
        return self._epoch

    def get(self, text: str) -> Optional[Any]:
        """Return the cached AST for ``text``, or ``None`` on a miss."""
        with self._lock:
            statement = self._data.get(text)
            if statement is None:
                self.misses += 1
                return None
            self._data.move_to_end(text)
            self.hits += 1
            return statement

    def put(self, text: str, statement: Any) -> None:
        """Cache the parsed AST, evicting the LRU entry when full."""
        with self._lock:
            self._data[text] = statement
            self._data.move_to_end(text)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def invalidate(self) -> None:
        """Discard every cached statement and advance the schema epoch."""
        with self._lock:
            self._data.clear()
            self._epoch += 1
            self.invalidations += 1

    def stats(self) -> Dict[str, int]:
        """Point-in-time counters for tests and /metrics mirroring."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._data),
                "capacity": self.capacity,
                "epoch": self._epoch,
                "invalidations": self.invalidations,
            }

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

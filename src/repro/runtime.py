"""Instance-scoped runtime context: obs + faults bundled per database.

Historically every instrumented module reached for the process-wide
``repro.obs.OBS`` and ``repro.faults.FAULTS`` singletons.  That breaks the
moment two ledgers share a process — shard A's lock waits land in shard B's
``lock_wait_seconds{lock=ledger.storage}`` series, the profiler's role
registry can only hold one "block-builder", and arming a fault for one
shard's torture run crashes them all.

:class:`LedgerContext` is the fix: a small bundle of telemetry + fault
registry + instance name that is threaded through engine → core → pipeline →
obs → faults at construction time.  The *default* context wraps the familiar
process-wide singletons, so a plain ``LedgerDatabase.open(path)`` (the shell
and CLI convenience path) behaves exactly as before — bare lock names, bare
thread roles, no ``shard=`` event field.  Named contexts (shards, or a second
database opened while the first is still up) suffix every lock name and
thread role with ``@<name>`` and stamp ``shard=<name>`` on emitted events.

Instance names are claimed while a database is open and released on close:
sequential open/close cycles in one process keep the bare default name, while
genuinely concurrent instances get distinct ``i2``, ``i3`` … suffixes
automatically.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.faults import FAULTS, FaultRegistry
from repro.obs import OBS, Telemetry


class ScopedEvents:
    """Event-log proxy stamping ``shard=<name>`` on every emitted event.

    Everything except :meth:`emit` passes straight through to the wrapped
    :class:`~repro.obs.events.EventLog`, so consumers (monitor, server,
    flight recorder) can treat a scoped log exactly like a bare one.
    """

    def __init__(self, events: Any, shard: str) -> None:
        self._events = events
        self._shard = shard

    def emit(self, category: str, name: str, **fields: Any):
        fields.setdefault("shard", self._shard)
        return self._events.emit(category, name, **fields)

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._events, attr)


class LedgerContext:
    """One database instance's observability + fault-injection scope."""

    def __init__(
        self,
        name: str = "",
        obs: Optional[Telemetry] = None,
        faults: Optional[FaultRegistry] = None,
    ) -> None:
        self.name = name
        self.obs = obs if obs is not None else OBS
        self.faults = faults if faults is not None else FAULTS
        self._events = (
            ScopedEvents(self.obs.events, name) if name else self.obs.events
        )

    @property
    def metrics(self):
        return self.obs.metrics

    @property
    def tracer(self):
        return self.obs.tracer

    @property
    def events(self):
        return self._events

    def scoped(self, base: str) -> str:
        """Scope a lock name or thread role to this instance.

        The default (unnamed) context returns ``base`` unchanged so a single
        database keeps the documented ``ledger.storage`` / ``block-builder``
        labels; named contexts append ``@<name>``.
        """
        if not self.name:
            return base
        return f"{base}@{self.name}"

    def __repr__(self) -> str:
        return f"<LedgerContext name={self.name!r}>"


#: The process-default context: the singletons, unscoped names.
DEFAULT_CONTEXT = LedgerContext()


# ----------------------------------------------------------------------
# Instance-name bookkeeping
# ----------------------------------------------------------------------

_names_lock = threading.Lock()
_open_names: set = set()


def claim_instance_name(requested: Optional[str] = None) -> str:
    """Reserve an instance name for a database being opened.

    ``requested`` wins when given (shards pass ``s0``, ``s1`` …).  Otherwise
    the bare default name ``""`` is handed out if no other default-named
    instance is currently open; concurrent extras get ``i2``, ``i3`` …  The
    name must be released via :func:`release_instance_name` at close.
    """
    with _names_lock:
        if requested is not None:
            name = requested
        elif "" not in _open_names:
            name = ""
        else:
            n = 2
            while f"i{n}" in _open_names:
                n += 1
            name = f"i{n}"
        _open_names.add(name)
        return name


def release_instance_name(name: str) -> None:
    with _names_lock:
        _open_names.discard(name)

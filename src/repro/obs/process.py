"""Process self-metrics: RSS, file descriptors, GC activity, thread count.

The ledger's own health matters as much as the chain's: a block builder
leaking memory or a monitor exhausting file descriptors eventually *causes*
the availability incidents the watchtower exists to catch.  This module
registers a small set of pull-style process gauges and a GC counter on a
:class:`MetricsRegistry` and refreshes them at scrape time via the
registry's collector hook, so the hot paths pay nothing:

* ``process_resident_memory_bytes`` — RSS from ``/proc/self/statm``;
* ``process_open_fds`` — entries in ``/proc/self/fd``;
* ``process_threads`` — live Python threads;
* ``process_gc_collections_total{generation=...}`` — completed garbage
  collections, counted push-style via ``gc.callbacks``.

Everything degrades gracefully off-Linux: probes that cannot read procfs
simply leave their gauge at its last value.  Stdlib only.
"""

from __future__ import annotations

import gc
import os
import threading
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry

_INSTALL_ATTR = "_process_metrics_installed"

_lock = threading.Lock()
_gc_family = None
_gc_callback_installed = False


def _read_rss_bytes() -> Optional[int]:
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def _count_open_fds() -> Optional[int]:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def _gc_callback(phase: str, info: Any) -> None:
    family = _gc_family
    if family is None or phase != "stop":
        return
    generation = info.get("generation") if isinstance(info, dict) else None
    family.labels(str(generation)).inc()


def install_process_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> bool:
    """Register process self-metrics on ``registry`` (default: ``OBS``).

    Idempotent per registry: returns True when this call installed the
    metrics, False when they were already present.
    """
    if registry is None:
        from repro.obs import OBS

        registry = OBS.metrics

    with _lock:
        if getattr(registry, _INSTALL_ATTR, False):
            return False

        rss = registry.gauge(
            "process_resident_memory_bytes",
            "Resident set size of this process",
        )
        fds = registry.gauge(
            "process_open_fds",
            "Open file descriptors held by this process",
        )
        threads = registry.gauge(
            "process_threads",
            "Live Python threads in this process",
        )
        gc_total = registry.counter(
            "process_gc_collections_total",
            "Completed garbage collections by generation",
            labelnames=("generation",),
        )

        def collect() -> None:
            rss_bytes = _read_rss_bytes()
            if rss_bytes is not None:
                rss.set(rss_bytes)
            open_fds = _count_open_fds()
            if open_fds is not None:
                fds.set(open_fds)
            threads.set(threading.active_count())

        registry.add_collector(collect)

        global _gc_family, _gc_callback_installed
        # The GC counter is push-style (collections between scrapes would be
        # invisible to a poll); only the first installed registry gets it —
        # in practice that is always the process-wide OBS registry.
        if not _gc_callback_installed:
            _gc_family = gc_total
            gc.callbacks.append(_gc_callback)
            _gc_callback_installed = True

        setattr(registry, _INSTALL_ATTR, True)
    return True

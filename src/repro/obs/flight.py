"""Flight recorder: a black box dumped the moment something goes wrong.

Verification failures and crashes are only *diagnosable* if the telemetry
leading up to them survives the incident.  The in-memory span ring and
event buffer die with the process, and a tampered ledger may be re-tampered
before anyone attaches a debugger — so, like an aircraft black box, the
:class:`FlightRecorder` freezes the last N spans (finished *and* in-flight),
the recent event tail and a full metrics snapshot into one atomically
written JSON bundle the instant a trigger event fires.

Triggers (see the matrix in DESIGN.md):

* ``tamper.detected`` — the monitor or digest path proved a mismatch;
* ``fault.injected`` — the fault registry fired an armed fault, including
  kill-mode faults that ``os._exit`` immediately afterwards (the event log
  invokes listeners synchronously on the emitting thread, so the dump
  completes before the process dies);
* ``pipeline.builder_crashed`` / ``pipeline.builder_gave_up`` — the block
  builder died (or its supervisor stopped restarting it);
* ``verify.failed`` — an explicit verification run found a problem.

Bundles are written as ``flight_<utc>_<pid>_<n>_<reason>.json`` via a
temp-file + ``os.replace`` so a reader never sees a torn bundle, and a
re-entrancy guard ensures a dump can never trigger itself.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

#: Event names that trip an automatic dump.
TRIGGER_EVENTS = frozenset(
    {
        "tamper.detected",
        "fault.injected",
        "pipeline.builder_crashed",
        "pipeline.builder_gave_up",
        "verify.failed",
    }
)

#: How many recent events a bundle captures.
EVENT_TAIL = 512

#: Bundle schema version.
BUNDLE_SCHEMA_VERSION = 1


class FlightRecorder:
    """Dumps spans + events + metrics to a bundle on trigger events."""

    def __init__(self, directory: str, telemetry=None) -> None:
        if telemetry is None:
            from repro.obs import OBS

            telemetry = OBS
        self._obs = telemetry
        self.directory = directory
        self._installed = False
        self._dump_lock = threading.Lock()
        self.dumps = 0
        self.last_bundle: Optional[str] = None
        self.last_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def installed(self) -> bool:
        return self._installed

    def install(self) -> "FlightRecorder":
        """Arm the recorder: listen on the event log for trigger events.

        Enables the event log if needed — a black box that cannot hear the
        mayday call is useless — and creates the bundle directory eagerly so
        a dump at crash time only has to write one file.
        """
        os.makedirs(self.directory, exist_ok=True)
        if not self._installed:
            # Bundles carry a metrics snapshot; make sure it includes the
            # process vitals (RSS, fds, threads, GC) a post-mortem needs.
            from repro.obs.process import install_process_metrics

            install_process_metrics(self._obs.metrics)
            self._obs.events.enable()
            self._obs.events.add_listener(self._on_event)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self._obs.events.remove_listener(self._on_event)
            self._installed = False

    def status(self) -> Dict[str, Any]:
        return {
            "directory": self.directory,
            "installed": self._installed,
            "dumps": self.dumps,
            "last_bundle": self.last_bundle,
            "last_reason": self.last_reason,
            "triggers": sorted(TRIGGER_EVENTS),
        }

    # ------------------------------------------------------------------
    # Triggering + dumping
    # ------------------------------------------------------------------

    def _on_event(self, event) -> None:
        if event.name in TRIGGER_EVENTS:
            self.dump(reason=event.name, trigger=event)

    def dump(self, reason: str, trigger=None) -> Optional[str]:
        """Write one bundle; returns its path, or None if skipped/failed.

        Non-blocking under contention: if another thread is mid-dump the
        call returns None rather than queueing — the in-progress bundle
        already captures this moment's state.
        """
        if not self._dump_lock.acquire(blocking=False):
            return None
        try:
            bundle = self._build_bundle(reason, trigger)
            path = self._bundle_path(reason, bundle["ts"])
            tmp_path = path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(bundle, handle, separators=(",", ":"), default=str)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except Exception:
            return None
        finally:
            self._dump_lock.release()
        self.dumps += 1
        self.last_bundle = path
        self.last_reason = reason
        # Not in TRIGGER_EVENTS, so this can never recurse into a dump.
        self._obs.events.emit(
            "monitor", "flight.dumped", reason=reason, path=path
        )
        return path

    def _build_bundle(self, reason: str, trigger) -> Dict[str, Any]:
        from repro.obs.lockstats import lock_stats_snapshot
        from repro.obs.profiler import active_profile_snapshot

        tracer = self._obs.tracer
        finished: List[Dict[str, Any]] = [
            span.to_dict() for span in tracer.recorder.spans()
        ]
        active: List[Dict[str, Any]] = []
        now_ns = time.monotonic_ns()
        for span in tracer.active_spans():
            data = span.to_dict()
            data["in_flight"] = True
            # Duration so far — the span will never get a real one if the
            # process dies right after this dump.
            data["duration_ns"] = max(0, now_ns - span.start_ns)
            active.append(data)
        return {
            "schema": BUNDLE_SCHEMA_VERSION,
            "reason": reason,
            "ts": time.time(),
            "pid": os.getpid(),
            "trigger": trigger.to_dict() if trigger is not None else None,
            "spans": finished,
            "active_spans": active,
            "events": [e.to_dict() for e in self._obs.events.tail(EVENT_TAIL)],
            "metrics": self._obs.metrics.snapshot(),
            # Lock contention state at the moment of the incident, plus
            # whatever profile was being captured (a crash mid-profile
            # should not lose the partial samples).
            "locks": lock_stats_snapshot(),
            "profile": active_profile_snapshot(),
        }

    def _bundle_path(self, reason: str, ts: float) -> str:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(ts))
        safe_reason = reason.replace(".", "_").replace("/", "_")
        name = (
            f"flight_{stamp}_{os.getpid()}_{self.dumps}_{safe_reason}.json"
        )
        return os.path.join(self.directory, name)


def read_bundle(path: str) -> Dict[str, Any]:
    """Load a bundle written by :meth:`FlightRecorder.dump`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def list_bundles(directory: str) -> List[str]:
    """Bundle paths under ``directory``, oldest first."""
    try:
        names = sorted(
            name
            for name in os.listdir(directory)
            if name.startswith("flight_") and name.endswith(".json")
        )
    except OSError:
        return []
    return [os.path.join(directory, name) for name in names]

"""Telemetry subsystem: metrics registry + pipeline tracer.

The paper's evaluation (Figs. 7–9) argues about *where* ledger overhead
comes from — row hashing vs. Merkle building vs. WAL writes vs. block
appends vs. verification scans.  This package gives the reproduction the
instrumentation to measure that decomposition directly:

* :mod:`repro.obs.metrics` — thread-safe counters, gauges and fixed-bucket
  histograms with Prometheus text exposition and JSON snapshot/delta export;
* :mod:`repro.obs.tracing` — nested spans with a ring-buffer recorder and an
  optional JSONL exporter;
* :mod:`repro.obs.events` — structured, append-only event log covering the
  ledger lifecycle (blocks, digests, verification, tampering), feeding the
  watchtower monitor (:mod:`repro.obs.monitor`) and the HTTP endpoint
  (:mod:`repro.obs.server`).  The monitor and server are imported lazily by
  their consumers — not here — to keep this package import-cycle free.

All hang off one process-wide :class:`Telemetry` instance, :data:`OBS`
(mirroring the Prometheus client's default registry).  It starts
**disabled**: every instrumentation point in the engine guards on a cheap
``enabled`` check, so the hot paths pay a single attribute load and branch
until someone opts in:

    from repro.obs import OBS
    OBS.enable()                 # counters + histograms + spans
    ...
    print(OBS.metrics.exposition())
    trees = build_span_trees(OBS.tracer.recorder.spans())

Naming conventions (documented in DESIGN.md): metric names are
``<subsystem>_<what>_<unit>`` with subsystems ``sql``, ``ledger``,
``merkle``, ``wal``, ``txn``, ``block``, ``digest``, ``verify``,
``recovery`` and ``engine``; span names are ``<subsystem>.<operation>``.
"""

from __future__ import annotations

import os as _os

from repro.obs.context import TraceContext, mint_trace_id
from repro.obs.events import EVENT_SCHEMA_VERSION, Event, EventLog
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    Timer,
)
from repro.obs.tracing import (
    JsonlExporter,
    RingBufferRecorder,
    Span,
    SpanNode,
    Tracer,
    build_lineage_tree,
    build_span_trees,
    render_span_tree,
)

__all__ = [
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "EVENT_SCHEMA_VERSION",
    "Event",
    "EventLog",
    "JsonlExporter",
    "MetricFamily",
    "MetricsRegistry",
    "OBS",
    "RingBufferRecorder",
    "Span",
    "SpanNode",
    "Telemetry",
    "Timer",
    "TraceContext",
    "Tracer",
    "build_lineage_tree",
    "build_span_trees",
    "disable_telemetry",
    "enable_telemetry",
    "mint_trace_id",
    "render_span_tree",
    "telemetry",
]


class Telemetry:
    """A metrics registry, a tracer and an event log sharing one switch."""

    def __init__(
        self,
        enabled: bool = False,
        trace_capacity: int = 4096,
        event_capacity: int = 4096,
    ) -> None:
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(
            recorder=RingBufferRecorder(capacity=trace_capacity),
            enabled=enabled,
        )
        self.events = EventLog(capacity=event_capacity, enabled=enabled)

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.tracer.enabled or self.events.enabled

    def enable(
        self, metrics: bool = True, tracing: bool = True, events: bool = True
    ) -> None:
        if metrics:
            self.metrics.enable()
        if tracing:
            self.tracer.enable()
        if events:
            self.events.enable()

    def disable(self) -> None:
        self.metrics.disable()
        self.tracer.disable()
        self.events.disable()

    def reset(self) -> None:
        """Zero metric values, drop recorded spans and buffered events."""
        self.metrics.reset()
        self.tracer.reset()
        self.events.reset()


#: The process-default telemetry instance all instrumented modules use.
OBS = Telemetry()

# Forked children (verify_parallel workers) inherit the forking thread's
# threading.local slot: without this, their first span would be parented
# under whatever span the parent had open at fork time.
if hasattr(_os, "register_at_fork"):  # pragma: no branch - POSIX only
    _os.register_at_fork(after_in_child=OBS.tracer.reset_thread)


def telemetry() -> Telemetry:
    """The process-default :class:`Telemetry` instance."""
    return OBS


def enable_telemetry(
    metrics: bool = True, tracing: bool = True, events: bool = True
) -> Telemetry:
    OBS.enable(metrics=metrics, tracing=tracing, events=events)
    return OBS


def disable_telemetry() -> Telemetry:
    OBS.disable()
    return OBS

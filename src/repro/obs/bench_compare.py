"""Bench-regression gate: diff a fresh harness run against a BENCH_*.json.

The repo commits four baseline files (pipeline, obs, verify, faults) but
until now nothing *compared* new numbers against them — a PR could halve
pipeline throughput and no gate would notice.  This module turns any
baseline into a regression check::

    python -m repro harness compare \\
        --baseline BENCH_pipeline_baseline.json --threshold-pct 15

Design decisions, tuned to how noisy the measurements actually are:

* **Direction by name.**  Every numeric leaf of the baseline is
  classified from its key path: throughput-like metrics (``tps``,
  ``per_s``, ``speedup``, ``rate``) must not drop; latency-like metrics
  (``ms``, ``seconds``, ``lag``) must not rise.  Keys carrying neither
  token — and *tail* statistics (``p99``, ``max``), which swing wildly
  between runs on shared hosts — are reported as ``info`` only and never
  gate.
* **Best-of-N measurement.**  A fresh pipeline run is repeated
  ``rounds`` times (default 3) and each gated metric takes its
  direction-aware best across rounds.  Baselines record a machine's
  achievable numbers; "can this checkout still reach them" is the
  regression question, and best-of-N answers it without flagging
  scheduler noise.
* **Absolute noise floors.**  Sub-millisecond latency deltas are below
  timer+scheduler noise on shared runners, so a latency regression must
  exceed both the relative threshold *and* a small absolute floor
  (0.1 ms / 100 ms-scale seconds analog) to fail.
* **Warn-only mode** (``--warn-only``) downgrades every ``fail`` to
  ``warn`` and exits 0 — what CI uses, because hosted runners are noisy
  enough that a hard gate would cry wolf (the satellite task's explicit
  requirement).

The comparator is source-agnostic: it flattens nested dicts to
dot-joined key paths, so any committed BENCH file works, and
``--current PATH`` diffs two files without re-running anything.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ComparisonReport",
    "classify_direction",
    "compare_payloads",
    "flatten_numeric",
    "run_compare",
]

#: Key tokens marking a metric where bigger is better.
HIGHER_IS_BETTER_TOKENS = ("tps", "throughput", "per_s", "speedup", "rate")

#: Key tokens marking a metric where smaller is better.
LOWER_IS_BETTER_TOKENS = ("ms", "seconds", "latency", "lag", "age")

#: Tail/extreme statistics: too noisy to gate, reported as info.
INFO_TOKENS = ("p99", "max", "p999", "p95")

#: Workload-shape / bookkeeping keys: compared for equality, never for
#: magnitude — a baseline run at 4 threads must not "fail" a 4-thread
#: rerun because the thread count "regressed by 0%".  Single words only:
#: key paths are tokenized on both ``.`` and ``_`` before matching.
CONFIG_TOKENS = (
    "threads", "transactions", "size", "blocks", "block", "commits",
    "cpu", "cpus", "count", "versions", "checkpoint", "total", "passed",
    "restarts", "streak", "drains", "built", "errors", "cycles", "depth",
    "pending", "sealed", "invariants", "points", "dumps",
)

#: Absolute per-unit noise floors: a worse delta smaller than this can
#: never fail, whatever the percentage (0.19 ms medians move by 40µs
#: between back-to-back runs on one host).
ABS_NOISE_FLOORS = {"ms": 0.1, "seconds": 0.02}

DEFAULT_THRESHOLD_PCT = 15.0
DEFAULT_ROUNDS = 3


def flatten_numeric(payload: Any, prefix: str = "") -> Dict[str, float]:
    """Dot-joined path → value for every numeric (non-bool) leaf."""
    flat: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_numeric(value, path))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        if not (isinstance(payload, float) and math.isnan(payload)):
            flat[prefix] = float(payload)
    return flat


def _tokens(path: str) -> List[str]:
    parts: List[str] = []
    for segment in path.lower().split("."):
        parts.extend(segment.split("_"))
    return parts


def classify_direction(path: str) -> str:
    """``higher`` | ``lower`` | ``config`` | ``info`` for one key path."""
    tokens = _tokens(path)
    if any(token in INFO_TOKENS for token in tokens):
        return "info"
    if any(token in CONFIG_TOKENS for token in tokens):
        return "config"
    if any(token in HIGHER_IS_BETTER_TOKENS for token in tokens):
        return "higher"
    if any(token in LOWER_IS_BETTER_TOKENS for token in tokens):
        return "lower"
    return "info"


def _noise_floor(path: str) -> float:
    tokens = _tokens(path)
    for unit, floor in ABS_NOISE_FLOORS.items():
        if unit in tokens:
            return floor
    return 0.0


class ComparisonReport:
    """Per-metric rows plus an overall verdict."""

    def __init__(
        self,
        baseline_path: str,
        threshold_pct: float,
        warn_only: bool,
        rounds: int,
    ) -> None:
        self.baseline_path = baseline_path
        self.threshold_pct = threshold_pct
        self.warn_only = warn_only
        self.rounds = rounds
        self.rows: List[Dict[str, Any]] = []

    def add(self, row: Dict[str, Any]) -> None:
        self.rows.append(row)

    @property
    def verdict(self) -> str:
        """``fail`` > ``warn`` > ``pass`` (info/improved never gate)."""
        verdicts = {row["verdict"] for row in self.rows}
        if "fail" in verdicts:
            return "fail"
        if "warn" in verdicts:
            return "warn"
        return "pass"

    @property
    def exit_code(self) -> int:
        return 1 if self.verdict == "fail" else 0

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for row in self.rows:
            counts[row["verdict"]] = counts.get(row["verdict"], 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline_path,
            "threshold_pct": self.threshold_pct,
            "warn_only": self.warn_only,
            "rounds": self.rounds,
            "verdict": self.verdict,
            "counts": self.counts(),
            "rows": self.rows,
        }

    def render(self, show_info: bool = False) -> str:
        order = {"fail": 0, "warn": 1, "improved": 2, "pass": 3, "info": 4}
        rows = sorted(
            self.rows, key=lambda r: (order.get(r["verdict"], 9), r["metric"])
        )
        lines = [
            f"baseline comparison: {self.baseline_path} "
            f"(threshold ±{self.threshold_pct:g}%, best of {self.rounds} "
            f"round(s){', warn-only' if self.warn_only else ''})",
            f"{'metric':<52} {'baseline':>12} {'current':>12} "
            f"{'delta':>8}  verdict",
        ]
        shown = hidden = 0
        for row in rows:
            if row["verdict"] == "info" and not show_info:
                hidden += 1
                continue
            shown += 1
            delta_pct = row["delta_pct"]
            delta_text = (
                f"{delta_pct:>+7.1f}%" if delta_pct is not None else "     n/a"
            )
            lines.append(
                f"{row['metric']:<52} {row['baseline']:>12.4g} "
                f"{row['current']:>12.4g} {delta_text}  {row['verdict']}"
                + (f"  ({row['note']})" if row.get("note") else "")
            )
        if hidden:
            lines.append(
                f"(+{hidden} info-only metrics hidden; --show-info lists them)"
            )
        counts = self.counts()
        summary = ", ".join(
            f"{counts[v]} {v}"
            for v in ("fail", "warn", "improved", "pass", "info")
            if counts.get(v)
        )
        lines.append(f"verdict: {self.verdict.upper()} ({summary})")
        return "\n".join(lines)


def compare_payloads(
    baseline: Dict[str, Any],
    current_rounds: List[Dict[str, Any]],
    baseline_path: str = "<baseline>",
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    warn_only: bool = False,
) -> ComparisonReport:
    """Compare flattened baseline metrics against best-of-N current runs."""
    report = ComparisonReport(
        baseline_path, threshold_pct, warn_only, len(current_rounds)
    )
    base_flat = flatten_numeric(baseline)
    round_flats = [flatten_numeric(payload) for payload in current_rounds]
    for metric in sorted(base_flat):
        values = [flat[metric] for flat in round_flats if metric in flat]
        base_value = base_flat[metric]
        if not values:
            report.add(
                {
                    "metric": metric,
                    "baseline": base_value,
                    "current": math.nan,
                    "delta_pct": None,
                    "verdict": "info",
                    "note": "missing from current run",
                }
            )
            continue
        direction = classify_direction(metric)
        if direction == "higher":
            current = max(values)
        elif direction == "lower":
            current = min(values)
        else:
            current = values[-1]
        delta = current - base_value
        delta_pct = (delta / base_value * 100.0) if base_value else None
        row: Dict[str, Any] = {
            "metric": metric,
            "baseline": base_value,
            "current": current,
            "delta_pct": round(delta_pct, 2) if delta_pct is not None else None,
        }
        if direction == "config":
            row["verdict"] = "pass" if current == base_value else "warn"
            if current != base_value:
                row["note"] = "workload shape differs from baseline"
        elif direction == "info":
            row["verdict"] = "info"
        else:
            worse = delta < 0 if direction == "higher" else delta > 0
            over_threshold = (
                delta_pct is not None and abs(delta_pct) > threshold_pct
            )
            within_floor = abs(delta) <= _noise_floor(metric)
            if worse and over_threshold and not within_floor:
                row["verdict"] = "warn" if warn_only else "fail"
            elif not worse and over_threshold:
                row["verdict"] = "improved"
            else:
                row["verdict"] = "pass"
                if worse and over_threshold and within_floor:
                    row["note"] = "within absolute noise floor"
        report.add(row)
    return report


# ---------------------------------------------------------------------------
# Fresh-run dispatch per baseline kind
# ---------------------------------------------------------------------------

def detect_baseline_kind(baseline: Dict[str, Any]) -> str:
    """Which harness experiment produced this BENCH file."""
    if "single_thread" in baseline and "concurrent" in baseline:
        return "pipeline"
    if "sharded" in baseline:
        return "shard"
    if isinstance(baseline.get("server"), dict) and (
        "closed_loop" in baseline["server"]
    ):
        return "server"
    if "verify" in baseline:
        return "verify"
    if "recovery_seconds" in baseline:
        return "faults"
    if "fig7" in baseline or "fig8" in baseline:
        return "obs"
    raise ValueError(
        "unrecognized baseline shape: expected a BENCH_*.json written by "
        "the harness (pipeline/shard/server/verify/faults/obs)"
    )


def _run_fresh(kind: str, baseline: Dict[str, Any]) -> Dict[str, Any]:
    """One fresh measurement matching the baseline's shape."""
    # Imported lazily: repro.workloads.harness imports the core stack,
    # and this module must stay importable from repro.obs without cycles.
    from repro.workloads import harness

    if kind == "pipeline":
        threads = int(
            baseline.get("concurrent", {}).get("threads", 4) or 4
        )
        return {
            "single_thread": harness.run_pipeline_bench(threads=1),
            "concurrent": harness.run_pipeline_bench(threads=threads),
        }
    with tempfile.TemporaryDirectory(prefix="repro-compare-") as tmp:
        path = os.path.join(tmp, "fresh.json")
        if kind == "shard":
            sharded = baseline.get("sharded", {})
            return harness.run_shard_baseline(
                path,
                shards=int(sharded.get("shards", 4) or 4),
                concurrency=int(sharded.get("concurrency", 4) or 4),
            )
        if kind == "server":
            config = baseline.get("server", {}).get("config", {})
            return harness.run_server_baseline(
                path,
                clients=int(config.get("clients", 32) or 32),
                transactions_per_client=int(
                    config.get("transactions_per_client", 25) or 25
                ),
            )
        if kind == "verify":
            return harness.run_verify_baseline(path)
        if kind == "faults":
            return harness.run_faults_baseline(
                path, kill=bool(baseline.get("kill_mode"))
            )
        if kind == "obs":
            return harness.run_obs_baseline(path)
    raise ValueError(f"unknown baseline kind {kind!r}")


def run_compare(
    baseline_path: str,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    warn_only: bool = False,
    current_path: Optional[str] = None,
    rounds: Optional[int] = None,
) -> ComparisonReport:
    """Load a baseline, measure (or load) current numbers, compare.

    ``current_path`` skips measurement and diffs two files.  ``rounds``
    defaults to :data:`DEFAULT_ROUNDS` for the (cheap) pipeline bench and
    1 for the long-running verify/faults/obs benches.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if current_path is not None:
        with open(current_path, "r", encoding="utf-8") as handle:
            current_rounds = [json.load(handle)]
    else:
        kind = detect_baseline_kind(baseline)
        if rounds is None:
            rounds = DEFAULT_ROUNDS if kind == "pipeline" else 1
        current_rounds = [_run_fresh(kind, baseline) for _ in range(rounds)]
    return compare_payloads(
        baseline,
        current_rounds,
        baseline_path=baseline_path,
        threshold_pct=threshold_pct,
        warn_only=warn_only,
    )

"""Instrumented locks: wait/hold histograms and contention counters.

The staged pipeline's behaviour under load is a story about three RLocks
(storage → sequencer → queue, DESIGN.md lock hierarchy) plus the WAL
writer's mutex — but until now nothing measured how long threads *wait*
for them versus how long holders *keep* them.  This module wraps
``threading.Lock``/``threading.RLock`` with drop-in equivalents that
record, per named lock:

* ``lock_wait_seconds{lock=…}``   — time from requesting to holding
  (0 for uncontended acquisitions, so the histogram count doubles as an
  acquisition count per bucket);
* ``lock_hold_seconds{lock=…}``   — time from (outermost) acquisition to
  final release;
* ``lock_contended_total{lock=…}`` — acquisitions that found the lock
  already held and had to block;
* ``lock_acquisitions_total{lock=…}`` — all successful acquisitions.

Contention is detected structurally, not by timing: every blocking
acquire first tries a non-blocking acquire, and only a failed try counts
as contended.  The zero-cost-when-disabled contract holds: with
``OBS.metrics.enabled`` false an acquisition costs the underlying lock
operation plus one attribute load and branch; metric children are
resolved once at construction, never per acquisition.

:class:`InstrumentedRLock` also implements the private protocol
(``_release_save`` / ``_acquire_restore`` / ``_is_owned``) that
``threading.Condition`` uses, so ``Condition(instrumented_rlock)`` —
the ledger's queue condition variable — keeps working, and a
``Condition.wait()`` correctly ends the current hold and starts a new
wait/hold measurement when it reacquires.

Every instrumented lock self-registers in a process-wide table;
:func:`lock_stats_snapshot` and :func:`format_lock_table` feed the
``/locks`` endpoint, the ``\\locks`` shell command, the harness's
``--profile`` report and flight-recorder bundles.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs import OBS

__all__ = [
    "InstrumentedLock",
    "InstrumentedRLock",
    "format_lock_table",
    "lock_stats_snapshot",
    "registered_locks",
]

#: Buckets tuned for lock events: storage-lock holds are ~100µs (one
#: commit's critical section) while a drain can hold for milliseconds.
_LOCK_BUCKETS = (
    0.000005, 0.00002, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
    0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1.0, 5.0,
)

def _lock_metrics(reg):
    """Per-registry lock metric families (resolved via ``handles``)."""

    class _Families:
        wait = reg.histogram(
            "lock_wait_seconds",
            "Time threads spent waiting to acquire an instrumented lock "
            "(0 when uncontended)",
            ("lock",),
            buckets=_LOCK_BUCKETS,
        )
        hold = reg.histogram(
            "lock_hold_seconds",
            "Time an instrumented lock was held, outermost acquire to "
            "final release",
            ("lock",),
            buckets=_LOCK_BUCKETS,
        )
        contended = reg.counter(
            "lock_contended_total",
            "Acquisitions of an instrumented lock that found it already held",
            ("lock",),
        )
        acquisitions = reg.counter(
            "lock_acquisitions_total",
            "Successful acquisitions of an instrumented lock",
            ("lock",),
        )

    return _Families


_registry_lock = threading.Lock()
_registry: Dict[str, "_InstrumentedBase"] = {}


class _InstrumentedBase:
    """Shared bookkeeping for both lock flavours.

    ``metrics`` is the :class:`~repro.obs.metrics.MetricsRegistry` the lock
    reports into; it defaults to the process-wide one.  Sharded deployments
    keep a single shared registry and disambiguate via scoped lock *names*
    (``ledger.storage@s1``), which become distinct ``lock=`` label values.
    """

    def __init__(self, name: str, metrics=None) -> None:
        self.name = name
        self._metrics = metrics if metrics is not None else OBS.metrics
        families = self._metrics.handles("lockstats", _lock_metrics)
        # Metric children resolved once; per-acquire cost is the observe.
        self._wait = families.wait.labels(name)
        self._hold = families.hold.labels(name)
        self._contended = families.contended.labels(name)
        self._acquisitions = families.acquisitions.labels(name)
        # Unsynchronized extrema/holder info: torn reads are acceptable for
        # a diagnostics table, locking them would serialize all holders.
        self.max_wait = 0.0
        self.max_hold = 0.0
        self._holder_ident: Optional[int] = None
        self._held_since: Optional[float] = None
        with _registry_lock:
            _registry[name] = self

    # -- metric plumbing ----------------------------------------------------

    def _record_acquired(
        self, wait: float, contended: bool, ident: Optional[int] = None
    ) -> None:
        # The holder's thread *name* is resolved lazily at report time:
        # threading.current_thread() here would cost a dict lookup per
        # acquisition even with metrics disabled.
        self._holder_ident = (
            ident if ident is not None else threading.get_ident()
        )
        self._held_since = time.perf_counter()
        if wait > self.max_wait:
            self.max_wait = wait
        if self._metrics.enabled:
            self._acquisitions.inc()
            self._wait.observe(wait)
            if contended:
                self._contended.inc()

    def _record_released(self) -> None:
        held_since = self._held_since
        self._holder_ident = None
        self._held_since = None
        if held_since is None:
            return
        hold = time.perf_counter() - held_since
        if hold > self.max_hold:
            self.max_hold = hold
        if self._metrics.enabled:
            self._hold.observe(hold)

    # -- introspection ------------------------------------------------------

    def holder(self) -> Optional[Dict[str, Any]]:
        """Current holder info, or None (racy by design — diagnostics only)."""
        ident = self._holder_ident
        held_since = self._held_since
        if ident is None or held_since is None:
            return None
        name = next(
            (t.name for t in threading.enumerate() if t.ident == ident),
            None,
        )
        return {
            "thread": name,
            "ident": ident,
            "held_for_seconds": round(time.perf_counter() - held_since, 6),
        }

    def stats(self) -> Dict[str, Any]:
        wait = self._wait
        hold = self._hold
        waits = wait.count
        return {
            "lock": self.name,
            "acquisitions": int(self._acquisitions.value),
            "contended": int(self._contended.value),
            "wait_count": waits,
            "wait_seconds_total": round(wait.sum, 6),
            "wait_seconds_mean": round(wait.sum / waits, 9) if waits else 0.0,
            "wait_seconds_max": round(self.max_wait, 6),
            "hold_count": hold.count,
            "hold_seconds_total": round(hold.sum, 6),
            "hold_seconds_mean": (
                round(hold.sum / hold.count, 9) if hold.count else 0.0
            ),
            "hold_seconds_max": round(self.max_hold, 6),
            "holder": self.holder(),
        }


class InstrumentedLock(_InstrumentedBase):
    """A named, metered drop-in for ``threading.Lock``."""

    def __init__(self, name: str, metrics=None) -> None:
        super().__init__(name, metrics=metrics)
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self._inner.acquire(False):
            self._record_acquired(0.0, contended=False)
            return True
        if not blocking:
            return False
        started = time.perf_counter()
        acquired = self._inner.acquire(True, timeout)
        if not acquired:
            return False
        self._record_acquired(
            time.perf_counter() - started, contended=True
        )
        return True

    def release(self) -> None:
        self._record_released()
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstrumentedLock {self.name!r} {self._inner!r}>"


class InstrumentedRLock(_InstrumentedBase):
    """A named, metered drop-in for ``threading.RLock``.

    Hold time is measured from the *outermost* acquisition to the final
    release — nested re-entries are free (a couple of integer ops), so
    re-entrant call chains do not inflate the hold histogram.
    """

    def __init__(self, name: str, metrics=None) -> None:
        super().__init__(name, metrics=metrics)
        self._inner = threading.RLock()
        # Owner/depth shadow the inner RLock's state.  Only the owning
        # thread mutates them while holding the lock; other threads only
        # compare _owner against their own ident, so no extra lock needed.
        self._owner: Optional[int] = None
        self._depth = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            self._inner.acquire()
            self._depth += 1
            return True
        if self._inner.acquire(False):
            self._owner = me
            self._depth = 1
            self._record_acquired(0.0, contended=False, ident=me)
            return True
        if not blocking:
            return False
        started = time.perf_counter()
        acquired = self._inner.acquire(True, timeout)
        if not acquired:
            return False
        self._owner = me
        self._depth = 1
        self._record_acquired(
            time.perf_counter() - started, contended=True, ident=me
        )
        return True

    def release(self) -> None:
        if self._owner != threading.get_ident():
            # Let the inner RLock raise the standard RuntimeError.
            self._inner.release()
            return
        if self._depth == 1:
            self._depth = 0
            self._owner = None
            self._record_released()
        else:
            self._depth -= 1
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    # -- threading.Condition protocol ---------------------------------------
    # Condition(lock) calls these instead of acquire/release when the lock
    # provides them; an RLock must, so a wait() can drop all nested holds.

    def _release_save(self) -> int:
        """Fully release (ending the hold measurement); returns the depth."""
        depth = self._depth
        self._depth = 0
        self._owner = None
        self._record_released()
        for _ in range(depth):
            self._inner.release()
        return depth

    def _acquire_restore(self, depth: int) -> None:
        """Reacquire to ``depth`` after a wait; a fresh wait/hold starts."""
        started = time.perf_counter()
        self._inner.acquire()
        wait = time.perf_counter() - started
        for _ in range(depth - 1):
            self._inner.acquire()
        me = threading.get_ident()
        self._owner = me
        self._depth = depth
        # A post-wait reacquire that had to sleep was, by definition,
        # contended; use a conservative 1µs floor to classify.
        self._record_acquired(wait, contended=wait > 1e-6, ident=me)

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InstrumentedRLock {self.name!r} owner={self._owner} "
            f"depth={self._depth}>"
        )


# ---------------------------------------------------------------------------
# Registry + reports
# ---------------------------------------------------------------------------

def registered_locks() -> Dict[str, _InstrumentedBase]:
    """Name → instrumented lock, every lock constructed in this process."""
    with _registry_lock:
        return dict(_registry)


def lock_stats_snapshot() -> List[Dict[str, Any]]:
    """Per-lock stats for all registered locks, busiest first."""
    stats = [lock.stats() for lock in registered_locks().values()]
    stats.sort(key=lambda row: (-row["acquisitions"], row["lock"]))
    return stats


def format_lock_table(stats: Optional[List[Dict[str, Any]]] = None) -> str:
    """Aligned text table of :func:`lock_stats_snapshot` for shells."""
    if stats is None:
        stats = lock_stats_snapshot()
    if not stats:
        return "(no instrumented locks registered)"
    header = (
        f"{'lock':<18} {'acq':>8} {'cont':>6} {'wait_mean':>10} "
        f"{'wait_max':>9} {'hold_mean':>10} {'hold_max':>9}  holder"
    )
    lines = [header]
    for row in stats:
        holder = row["holder"]
        holder_text = (
            f"{holder['thread']} ({holder['held_for_seconds'] * 1000:.2f}ms)"
            if holder else "-"
        )
        lines.append(
            f"{row['lock']:<18} {row['acquisitions']:>8} "
            f"{row['contended']:>6} "
            f"{row['wait_seconds_mean'] * 1e6:>8.1f}µs "
            f"{row['wait_seconds_max'] * 1000:>7.2f}ms "
            f"{row['hold_seconds_mean'] * 1e6:>8.1f}µs "
            f"{row['hold_seconds_max'] * 1000:>7.2f}ms  {holder_text}"
        )
    return "\n".join(lines)

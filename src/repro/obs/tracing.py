"""Tracing: nested spans over the ledger pipeline with a ring-buffer sink.

A :class:`Tracer` produces :class:`Span` records — monotonic start time,
duration, parent span id, free-form attributes — via the ``with
tracer.span("name"):`` context manager.  Nesting is tracked per thread, so a
span opened inside another span's ``with`` block automatically becomes its
child; the resulting trees reproduce the paper's pipeline decomposition
(parse → execute → hash → wal.commit → block.append) for any statement.

Finished spans go to a bounded :class:`RingBufferRecorder` (newest spans
win) and optionally to a :class:`JsonlExporter` that appends one JSON object
per span to a file for offline analysis.

When the tracer is disabled — the default — ``span()`` returns a shared
no-op context manager without touching the recorder, keeping the hot paths
at a single branch of overhead.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class Span:
    """One finished (or in-flight) operation in the pipeline."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ns: int
    duration_ns: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock start (epoch seconds) so exported traces can be correlated
    #: with the structured event log; 0.0 when unknown (legacy spans).
    start_unix: float = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "start_unix": self.start_unix,
            "duration_ns": self.duration_ns,
            "attributes": self.attributes,
        }


class _NoopSpan:
    """Shared, stateless stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class RingBufferRecorder:
    """Keeps the most recent ``capacity`` finished spans."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[Span]:
        """Recorded spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


class JsonlExporter:
    """Appends each finished span as one JSON line to ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")

    def record(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), separators=(",", ":"), default=str)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


class _ActiveSpan:
    """Context manager driving one recorded span's lifecycle."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        span = self._span
        span.duration_ns = time.monotonic_ns() - span.start_ns
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(span)
        self._tracer._emit(span)

    def set_attribute(self, key: str, value: Any) -> None:
        self._span.set_attribute(key, value)


class Tracer:
    """Produces nested spans; disabled (and free) unless enabled."""

    def __init__(
        self,
        recorder: Optional[RingBufferRecorder] = None,
        enabled: bool = False,
    ) -> None:
        self.enabled = enabled
        # Explicit None check: an empty recorder is falsy (it has __len__).
        self.recorder = recorder if recorder is not None else RingBufferRecorder()
        self._exporters: List[JsonlExporter] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.recorder.clear()

    def add_exporter(self, exporter: JsonlExporter) -> None:
        self._exporters.append(exporter)

    def remove_exporter(self, exporter: JsonlExporter) -> None:
        self._exporters.remove(exporter)

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a span; use as ``with tracer.span("wal.commit") as sp:``.

        Returns a shared no-op context manager when tracing is disabled.
        """
        if not self.enabled:
            return _NOOP_SPAN
        parent = self.current_span()
        span = Span(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_ns=time.monotonic_ns(),
            attributes=dict(attributes) if attributes else {},
            start_unix=time.time(),
        )
        return _ActiveSpan(self, span)

    def current_span(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # tolerate out-of-order exits
            stack.remove(span)

    def _emit(self, span: Span) -> None:
        self.recorder.record(span)
        for exporter in self._exporters:
            exporter.record(span)


# ---------------------------------------------------------------------------
# Span-tree helpers (used by tests and the shell)
# ---------------------------------------------------------------------------

@dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.name

    def child_names(self) -> List[str]:
        return [child.name for child in self.children]

    def find(self, name: str) -> Optional["SpanNode"]:
        """Depth-first search for the first node with the given name."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None


def build_span_trees(spans: Iterable[Span]) -> List[SpanNode]:
    """Reassemble recorded spans into forests ordered by start time.

    Spans whose parent is not in the input (e.g. evicted from the ring
    buffer) become roots.
    """
    nodes = {span.span_id: SpanNode(span) for span in spans}
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.span.parent_id)
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.span.start_ns)
    roots.sort(key=lambda n: n.span.start_ns)
    return roots


def render_span_tree(roots: List[SpanNode]) -> str:
    """ASCII rendering of span forests (used by the shell's ``\\spans``)."""
    lines: List[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        indent = "  " * depth
        ms = node.span.duration_ns / 1e6
        attrs = ""
        if node.span.attributes:
            attrs = " " + ", ".join(
                f"{k}={v}" for k, v in node.span.attributes.items()
            )
        stamp = ""
        if node.span.start_unix:
            wall = time.localtime(node.span.start_unix)
            millis = int((node.span.start_unix % 1) * 1000)
            stamp = time.strftime(" @%H:%M:%S", wall) + f".{millis:03d}"
        lines.append(f"{indent}{node.name} ({ms:.3f}ms){stamp}{attrs}")
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)

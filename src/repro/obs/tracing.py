"""Tracing: nested spans over the ledger pipeline with a ring-buffer sink.

A :class:`Tracer` produces :class:`Span` records — monotonic start time,
duration, parent span id, free-form attributes — via the ``with
tracer.span("name"):`` context manager.  Nesting is tracked per thread, so a
span opened inside another span's ``with`` block automatically becomes its
child; the resulting trees reproduce the paper's pipeline decomposition
(parse → execute → hash → wal.commit → block.append) for any statement.

Finished spans go to a bounded :class:`RingBufferRecorder` (newest spans
win) and optionally to a :class:`JsonlExporter` that appends one JSON object
per span to a file for offline analysis.

Since the commit pipeline was staged across threads, per-thread nesting
alone cannot describe a commit's full lifecycle.  Two additions stitch the
fragments together (see :mod:`repro.obs.context`):

* every span carries a ``trace_id`` — inherited from its thread-local
  parent, adopted from an explicit :class:`TraceContext`, or freshly minted
  for roots — so spans from different threads can claim membership in the
  same logical trace;
* a span may carry ``links``: weak references to spans in *other* traces
  (e.g. ``block.append`` links to every commit it covers).

:func:`build_lineage_tree` reassembles one commit's cross-thread lineage
from those two signals; :func:`build_span_trees` still reconstructs the
strictly thread-nested forests and is unaffected by links.

When the tracer is disabled — the default — ``span()`` returns a shared
no-op context manager without touching the recorder, keeping the hot paths
at a single branch of overhead.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.context import TraceContext, mint_trace_id


@dataclass
class Span:
    """One finished (or in-flight) operation in the pipeline."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ns: int
    duration_ns: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock start (epoch seconds) so exported traces can be correlated
    #: with the structured event log; 0.0 when unknown (legacy spans).
    start_unix: float = 0.0
    #: Logical trace this span belongs to; None for legacy/synthetic spans.
    trace_id: Optional[str] = None
    #: Weak cross-trace references: ``{"trace_id": ..., "span_id": ...}``.
    links: List[Dict[str, Any]] = field(default_factory=list)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_link(self, trace_id: str, span_id: Optional[int] = None) -> None:
        """Reference a span in another trace (e.g. a covered commit)."""
        self.links.append({"trace_id": trace_id, "span_id": span_id})

    def context(self) -> Optional[TraceContext]:
        """This span's identity as a portable :class:`TraceContext`."""
        if self.trace_id is None:
            return None
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "start_unix": self.start_unix,
            "duration_ns": self.duration_ns,
            "attributes": self.attributes,
            "trace_id": self.trace_id,
            "links": self.links,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (flight bundles)."""
        return cls(
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            start_ns=data.get("start_ns", 0),
            duration_ns=data.get("duration_ns", 0),
            attributes=data.get("attributes") or {},
            start_unix=data.get("start_unix", 0.0),
            trace_id=data.get("trace_id"),
            links=data.get("links") or [],
        )


class _NoopSpan:
    """Shared, stateless stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def add_link(self, trace_id: str, span_id: Optional[int] = None) -> None:
        return None

    def context(self) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class RingBufferRecorder:
    """Keeps the most recent ``capacity`` finished spans."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[Span]:
        """Recorded spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


class JsonlExporter:
    """Appends each finished span as one JSON line to ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")

    def record(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), separators=(",", ":"), default=str)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


class _ActiveSpan:
    """Context manager driving one recorded span's lifecycle."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        span = self._span
        span.duration_ns = time.monotonic_ns() - span.start_ns
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(span)
        self._tracer._emit(span)

    def set_attribute(self, key: str, value: Any) -> None:
        self._span.set_attribute(key, value)


class Tracer:
    """Produces nested spans; disabled (and free) unless enabled."""

    def __init__(
        self,
        recorder: Optional[RingBufferRecorder] = None,
        enabled: bool = False,
    ) -> None:
        self.enabled = enabled
        # Explicit None check: an empty recorder is falsy (it has __len__).
        self.recorder = recorder if recorder is not None else RingBufferRecorder()
        self._exporters: List[JsonlExporter] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        # In-flight spans (opened, not yet exited), keyed by span_id.  The
        # flight recorder reads these to capture the partial lineage of a
        # commit that never finished (crash, kill-mode fault).
        self._active: Dict[int, Span] = {}
        self._active_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.recorder.clear()
        with self._active_lock:
            self._active.clear()

    def reset_thread(self) -> None:
        """Clear the calling thread's span stack.

        Forked workers inherit the forking thread's ``threading.local``
        slot, and restarted daemon threads may reuse a thread object: both
        would silently parent fresh spans under a dead ancestor.  Call this
        at every fork/thread entry point before emitting spans.
        """
        self._local.stack = []

    def add_exporter(self, exporter: JsonlExporter) -> None:
        self._exporters.append(exporter)

    def remove_exporter(self, exporter: JsonlExporter) -> None:
        self._exporters.remove(exporter)

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------

    def span(
        self,
        name: str,
        context: Optional[TraceContext] = None,
        links: Iterable[TraceContext] = (),
        **attributes: Any,
    ):
        """Open a span; use as ``with tracer.span("wal.commit") as sp:``.

        ``context`` adopts another trace's identity: the span joins
        ``context.trace_id`` instead of minting/inheriting one, and — only
        when there is no thread-local parent — attaches under
        ``context.span_id``.  A thread-local parent always wins for tree
        position, so enabling propagation never reshapes the per-thread
        forests that :func:`build_span_trees` reports.  ``links`` records
        weak cross-trace references (see :meth:`Span.add_link`).

        Returns a shared no-op context manager when tracing is disabled.
        """
        if not self.enabled:
            return _NOOP_SPAN
        parent = self.current_span()
        if parent is not None:
            parent_id: Optional[int] = parent.span_id
            trace_id = context.trace_id if context is not None else parent.trace_id
            if trace_id is None:
                trace_id = mint_trace_id()
        elif context is not None:
            parent_id = context.span_id
            trace_id = context.trace_id
        else:
            parent_id = None
            trace_id = mint_trace_id()
        span = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            start_ns=time.monotonic_ns(),
            attributes=dict(attributes) if attributes else {},
            start_unix=time.time(),
            trace_id=trace_id,
        )
        for link in links:
            if link is not None:
                span.add_link(link.trace_id, link.span_id)
        return _ActiveSpan(self, span)

    def current_span(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def capture_context(self) -> Optional[TraceContext]:
        """The current span's identity, for carrying across a boundary.

        Inside a span this returns that span's ``(trace_id, span_id)``;
        outside any span it mints a fresh trace so the caller (e.g.
        ``TransactionManager.begin``) still gets a stable trace id.  Returns
        ``None`` while tracing is disabled — carriers stay empty for free.
        """
        if not self.enabled:
            return None
        current = self.current_span()
        if current is None:
            return TraceContext(trace_id=mint_trace_id())
        if current.trace_id is None:  # legacy span minted before enabling
            current.trace_id = mint_trace_id()
        return TraceContext(trace_id=current.trace_id, span_id=current.span_id)

    def record_span(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        context: Optional[TraceContext] = None,
        links: Iterable[TraceContext] = (),
        **attributes: Any,
    ) -> Optional[Span]:
        """Record an already-finished span retroactively.

        Used for intervals whose endpoints live on different threads — e.g.
        ``queue.wait`` is measured from the commit thread's enqueue to the
        builder's block-closure start, and only becomes recordable once the
        builder picks the entry up.  ``context`` supplies both the trace id
        and the parent to attach under; the thread-local stack is ignored.
        """
        if not self.enabled:
            return None
        span = Span(
            span_id=next(self._ids),
            parent_id=context.span_id if context is not None else None,
            name=name,
            start_ns=start_ns,
            duration_ns=max(0, duration_ns),
            attributes=dict(attributes) if attributes else {},
            start_unix=time.time() - max(0, duration_ns) / 1e9,
            trace_id=context.trace_id if context is not None else None,
        )
        for link in links:
            if link is not None:
                span.add_link(link.trace_id, link.span_id)
        self._emit(span)
        return span

    def active_spans(self) -> List[Span]:
        """In-flight spans (opened, not yet exited), oldest first."""
        with self._active_lock:
            spans = list(self._active.values())
        spans.sort(key=lambda s: s.start_ns)
        return spans

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)
        with self._active_lock:
            self._active[span.span_id] = span

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # tolerate out-of-order exits
            stack.remove(span)
        with self._active_lock:
            self._active.pop(span.span_id, None)

    def _emit(self, span: Span) -> None:
        self.recorder.record(span)
        for exporter in self._exporters:
            exporter.record(span)


# ---------------------------------------------------------------------------
# Span-tree helpers (used by tests and the shell)
# ---------------------------------------------------------------------------

@dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.name

    def child_names(self) -> List[str]:
        return [child.name for child in self.children]

    def find(self, name: str) -> Optional["SpanNode"]:
        """Depth-first search for the first node with the given name."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None


def build_span_trees(spans: Iterable[Span]) -> List[SpanNode]:
    """Reassemble recorded spans into forests ordered by start time.

    Spans whose parent is not in the input (e.g. evicted from the ring
    buffer) become roots.
    """
    nodes = {span.span_id: SpanNode(span) for span in spans}
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.span.parent_id)
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.span.start_ns)
    roots.sort(key=lambda n: n.span.start_ns)
    return roots


def build_lineage_tree(
    spans: Iterable[Span], trace_id: str
) -> List[SpanNode]:
    """Reassemble one commit's cross-thread lineage as a span forest.

    Membership is computed as a fixpoint closure over three rules — a span
    belongs to the lineage if:

    1. its ``trace_id`` matches (commit-side spans, ``queue.wait``);
    2. its parent is already a member (ordinary thread-local children);
    3. one of its ``links`` points at the trace or at a member span
       (``block.append`` linking the commits it covers, ``digest.*``
       linking the block they publish).

    Tree position prefers the real parent; a member included only via a
    link hangs under the linked member span instead, so ``block.append``
    (whose builder-thread parent is outside the trace) appears beneath the
    lineage rather than as a floating root when possible.
    """
    pool = list(spans)
    included: Dict[int, Span] = {
        span.span_id: span for span in pool if span.trace_id == trace_id
    }
    attach_via_link: Dict[int, int] = {}
    remaining = [s for s in pool if s.span_id not in included]
    changed = True
    while changed and remaining:
        changed = False
        deferred: List[Span] = []
        for span in remaining:
            member = (
                span.parent_id is not None and span.parent_id in included
            )
            link_anchor: Optional[int] = None
            if not member:
                for link in span.links:
                    linked_span = link.get("span_id")
                    if linked_span is not None and linked_span in included:
                        link_anchor = linked_span
                        break
                    if link.get("trace_id") == trace_id:
                        link_anchor = linked_span  # may be None
                        member = True
                        break
                if link_anchor is not None:
                    member = True
            if member:
                included[span.span_id] = span
                if (
                    link_anchor is not None
                    and span.parent_id not in included
                ):
                    attach_via_link[span.span_id] = link_anchor
                changed = True
            else:
                deferred.append(span)
        remaining = deferred

    nodes = {span_id: SpanNode(span) for span_id, span in included.items()}
    roots: List[SpanNode] = []
    for span_id, node in nodes.items():
        parent = nodes.get(node.span.parent_id)
        if parent is None:
            anchor = attach_via_link.get(span_id)
            parent = nodes.get(anchor) if anchor is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.span.start_ns)
    roots.sort(key=lambda n: n.span.start_ns)
    return roots


def render_span_tree(roots: List[SpanNode]) -> str:
    """ASCII rendering of span forests (used by the shell's ``\\spans``)."""
    lines: List[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        indent = "  " * depth
        ms = node.span.duration_ns / 1e6
        attrs = ""
        if node.span.attributes:
            attrs = " " + ", ".join(
                f"{k}={v}" for k, v in node.span.attributes.items()
            )
        stamp = ""
        if node.span.start_unix:
            wall = time.localtime(node.span.start_unix)
            millis = int((node.span.start_unix % 1) * 1000)
            stamp = time.strftime(" @%H:%M:%S", wall) + f".{millis:03d}"
        lines.append(f"{indent}{node.name} ({ms:.3f}ms){stamp}{attrs}")
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)

"""Metrics: a dependency-free, thread-safe registry of counters, gauges
and fixed-bucket histograms.

The design mirrors the Prometheus client-library data model, scaled down to
what this reproduction needs:

* A :class:`MetricsRegistry` owns metric *families* created with
  :meth:`~MetricsRegistry.counter`, :meth:`~MetricsRegistry.gauge` and
  :meth:`~MetricsRegistry.histogram`.  A family with label names hands out
  labeled children via :meth:`~MetricFamily.labels`; a family without label
  names is used directly.
* Every value mutation is guarded by a cheap ``enabled`` check so that
  instrumentation sprinkled across the hot paths costs a single attribute
  load and branch when telemetry is off — the zero-cost-when-disabled
  contract the DML latency budget (Fig. 8) depends on.
* Export comes in two shapes: Prometheus text exposition
  (:meth:`~MetricsRegistry.exposition`) for humans and scrapers, and JSON
  snapshot / delta (:meth:`~MetricsRegistry.snapshot`,
  :meth:`~MetricsRegistry.delta`) for the benchmark harness, which brackets
  an experiment with two snapshots and reports the difference.

Metric families are registered once (module import time, typically) and are
process-lived; :meth:`~MetricsRegistry.reset` zeroes the values without
invalidating family references held by instrumented modules.
"""

from __future__ import annotations

import math
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default latency buckets (seconds); chosen so everything from tens of
#: microseconds (lock waits, hash-chain appends) through sub-millisecond row
#: operations up to multi-second verifications lands in informative buckets.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default size/count buckets for histograms over discrete quantities
#: (rows per transaction, transactions per block, bytes per WAL record).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_string(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Child:
    """Base for one labeled time series; holds the value and its lock."""

    __slots__ = ("_registry", "_lock")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self._lock = threading.Lock()


class CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, registry: "MetricsRegistry") -> None:
        super().__init__(registry)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class GaugeChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, registry: "MetricsRegistry") -> None:
        super().__init__(registry)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class HistogramChild(_Child):
    __slots__ = ("_buckets", "_counts", "_sum", "_count")

    def __init__(
        self, registry: "MetricsRegistry", buckets: Tuple[float, ...]
    ) -> None:
        super().__init__(registry)
        self._buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._count += 1
            self._sum += value
            for i, bound in enumerate(self._buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def time(self) -> "Timer":
        """Context manager observing its wall-clock duration on exit."""
        return Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> Dict[float, int]:
        """Cumulative count per upper bound, Prometheus style (le)."""
        cumulative = 0
        result: Dict[float, int] = {}
        with self._lock:
            for bound, count in zip(self._buckets, self._counts):
                cumulative += count
                result[bound] = cumulative
            result[math.inf] = cumulative + self._counts[-1]
        return result

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self._buckets) + 1)
            self._sum = 0.0
            self._count = 0


class Timer:
    """Times a ``with`` block and observes the duration into a histogram.

    The elapsed seconds stay available as :attr:`elapsed`, so callers that
    also need the raw number (the benchmark harness) read the *same*
    measurement the histogram recorded — the two cannot drift apart.
    """

    __slots__ = ("_histogram", "_start", "elapsed")

    def __init__(self, histogram: HistogramChild) -> None:
        self._histogram = histogram
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._histogram.observe(self.elapsed)


class MetricFamily:
    """One named metric with zero or more labeled children."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self._registry = registry
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = tuple(sorted(buckets)) if kind == HISTOGRAM else ()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        self._lock = threading.Lock()
        if not labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> _Child:
        if self.kind == COUNTER:
            return CounterChild(self._registry)
        if self.kind == GAUGE:
            return GaugeChild(self._registry)
        return HistogramChild(self._registry, self.buckets)

    def labels(self, *labelvalues: Any) -> Any:
        """The child time series for the given label values (created lazily)."""
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.labelnames)} label(s), "
                f"got {len(labelvalues)}"
            )
        key = tuple(str(v) for v in labelvalues)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._new_child()
                    self._children[key] = child
        return child

    # Unlabeled convenience: delegate value operations to the sole child.

    def _sole_child(self) -> Any:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole_child().dec(amount)

    def set(self, value: float) -> None:
        self._sole_child().set(value)

    def observe(self, value: float) -> None:
        self._sole_child().observe(value)

    def time(self) -> Timer:
        return self._sole_child().time()

    @property
    def value(self) -> float:
        return self._sole_child().value

    @property
    def count(self) -> int:
        return self._sole_child().count

    @property
    def sum(self) -> float:
        return self._sole_child().sum

    def bucket_counts(self) -> Dict[float, int]:
        return self._sole_child().bucket_counts()

    def children(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        with self._lock:
            return list(self._children.items())

    def _reset(self) -> None:
        for _, child in self.children():
            child._reset()


class MetricsRegistry:
    """Thread-safe registry of metric families with text and JSON export."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()
        self._collectors: List[Callable[[], None]] = []
        self._handles: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every value; family references held by callers stay valid."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family._reset()

    # ------------------------------------------------------------------
    # Family creation (idempotent by name)
    # ------------------------------------------------------------------

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Iterable[str],
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            family = MetricFamily(
                self, name, kind, help_text, labelnames, buckets
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        return self._register(name, COUNTER, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        return self._register(name, GAUGE, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, HISTOGRAM, help_text, labelnames, buckets)

    def handles(self, key: str, factory: Callable[["MetricsRegistry"], Any]) -> Any:
        """Memoized per-registry bundle of metric-family handles.

        Instrumented modules used to bind their families to the process-wide
        registry at import time; instance-scoped contexts instead resolve a
        handle bundle against *their* registry once at construction:

            self._m = ctx.metrics.handles("wal", _wal_metrics)

        ``factory(registry)`` runs at most once per (registry, key); family
        creation itself stays idempotent by name, so bundles resolved against
        the same registry share the underlying time series.
        """
        handle = self._handles.get(key)
        if handle is None:
            with self._lock:
                handle = self._handles.get(key)
            if handle is None:
                built = factory(self)
                with self._lock:
                    handle = self._handles.setdefault(key, built)
        return handle

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    # ------------------------------------------------------------------
    # Scrape-time collectors
    # ------------------------------------------------------------------

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector()`` before every exposition/snapshot.

        Collectors refresh pull-style gauges (process RSS, open FDs, thread
        count) that would be stale or wasteful to update on every mutation.
        Exceptions are swallowed: a broken probe must not take down the
        scrape endpoint.
        """
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def remove_collector(self, collector: Callable[[], None]) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Prometheus text exposition
    # ------------------------------------------------------------------

    def exposition(self) -> str:
        """Render every family in the Prometheus text format (v0.0.4)."""
        self._run_collectors()
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family.children():
                labelstr = _label_string(family.labelnames, labelvalues)
                if family.kind == HISTOGRAM:
                    for bound, count in child.bucket_counts().items():
                        le = _format_value(float(bound))
                        if family.labelnames:
                            bucket_labels = labelstr[:-1] + f',le="{le}"}}'
                        else:
                            bucket_labels = f'{{le="{le}"}}'
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {count}"
                        )
                    lines.append(
                        f"{family.name}_sum{labelstr} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{labelstr} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{labelstr} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # JSON snapshot / delta
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of every metric's current values."""
        self._run_collectors()
        result: Dict[str, Any] = {}
        for family in self.families():
            samples = []
            for labelvalues, child in family.children():
                labels = dict(zip(family.labelnames, labelvalues))
                if family.kind == HISTOGRAM:
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": {
                                _format_value(float(bound)): count
                                for bound, count in child.bucket_counts().items()
                            },
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            result[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return result

    def delta(self, previous: Dict[str, Any]) -> Dict[str, Any]:
        """Difference between the current state and an earlier snapshot.

        Counters and histogram counts/sums subtract; gauges report their
        current value (a gauge has no meaningful difference).  Samples whose
        delta is all-zero are dropped, so the result shows exactly what an
        experiment did.
        """
        current = self.snapshot()
        result: Dict[str, Any] = {}
        for name, data in current.items():
            prev_samples = {
                _labels_key(s["labels"]): s
                for s in previous.get(name, {}).get("samples", [])
            }
            out_samples = []
            for sample in data["samples"]:
                before = prev_samples.get(_labels_key(sample["labels"]))
                if data["type"] == GAUGE:
                    if sample["value"] != 0:
                        out_samples.append(dict(sample))
                    continue
                if data["type"] == HISTOGRAM:
                    prev_count = before["count"] if before else 0
                    prev_sum = before["sum"] if before else 0.0
                    prev_buckets = before["buckets"] if before else {}
                    count = sample["count"] - prev_count
                    if count == 0:
                        continue
                    out_samples.append(
                        {
                            "labels": sample["labels"],
                            "count": count,
                            "sum": sample["sum"] - prev_sum,
                            "buckets": {
                                le: c - prev_buckets.get(le, 0)
                                for le, c in sample["buckets"].items()
                            },
                        }
                    )
                    continue
                prev_value = before["value"] if before else 0.0
                value = sample["value"] - prev_value
                if value == 0:
                    continue
                out_samples.append({"labels": sample["labels"], "value": value})
            if out_samples:
                result[name] = {
                    "type": data["type"],
                    "help": data["help"],
                    "samples": out_samples,
                }
        return result


def _labels_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(labels.items()))

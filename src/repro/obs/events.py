"""Structured event log: the watchtower's append-only audit trail.

The paper's detection story is only as good as its *record*: knowing that a
digest was uploaded, a block closed, or a verification failed matters little
if the observation is a line on stderr that nobody kept.  This module gives
the reproduction a machine-readable, append-only trail of every ledger
lifecycle event (block closed, digest generated/uploaded/skipped,
verification started/passed/failed, tamper detected, truncation, schema
change, recovery), modelled on the immutable audit streams that systems like
SignLedger keep next to the data they protect.

Design:

* :class:`Event` — one typed record: schema version, monotonically
  increasing sequence number, wall-clock timestamp (epoch seconds, so events
  correlate with the tracer's ``start_unix`` span field), a ``category``
  (subsystem: ``ledger``, ``digest``, ``verify``, ``schema``,
  ``truncation``, ``recovery``, ``tamper``, ``monitor``, ``harness``), a
  dotted event ``name`` and a free-form JSON payload.
* :class:`EventLog` — thread-safe sink.  Events always land in a bounded
  in-memory ring (for the ``\\events`` shell command and the ``/events``
  HTTP endpoint); optionally they are also appended as JSONL to a file with
  size-based rotation (``events.jsonl`` → ``events.jsonl.1`` → ...).
* A reader/filter API (:meth:`EventLog.read`, :meth:`EventLog.tail`) that
  reassembles rotated segments in sequence order.

Like the rest of ``repro.obs``, the log starts **disabled** and
:meth:`EventLog.emit` is a no-op until someone opts in — the watchtower
monitor and the shell enable it when they start.

This module is dependency-free (stdlib only) so that every layer of the
stack can emit events without import cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Bumped whenever the serialized event shape changes incompatibly.
EVENT_SCHEMA_VERSION = 1

#: Default rotation threshold (bytes) for file-backed logs.
DEFAULT_MAX_BYTES = 1_000_000

#: Default number of rotated segments retained next to the live file.
DEFAULT_MAX_SEGMENTS = 8


@dataclass(frozen=True)
class Event:
    """One structured observability event."""

    seq: int
    ts: float  # wall-clock epoch seconds
    category: str
    name: str
    payload: Dict[str, Any] = field(default_factory=dict)
    schema: int = EVENT_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "seq": self.seq,
            "ts": self.ts,
            "category": self.category,
            "name": self.name,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Event":
        return cls(
            seq=data["seq"],
            ts=data["ts"],
            category=data["category"],
            name=data["name"],
            payload=data.get("payload") or {},
            schema=data.get("schema", EVENT_SCHEMA_VERSION),
        )

    def __str__(self) -> str:
        detail = ""
        if self.payload:
            detail = " " + " ".join(
                f"{key}={value}" for key, value in self.payload.items()
            )
        stamp = time.strftime("%H:%M:%S", time.localtime(self.ts))
        return f"#{self.seq} {stamp} [{self.category}] {self.name}{detail}"


class EventLog:
    """Thread-safe, append-only event sink with optional JSONL persistence.

    Sequence numbers are assigned under the same lock that orders the
    writes, so concurrent emitters always produce a strictly increasing,
    gap-free sequence — the property the rotation/concurrency tests pin.
    """

    def __init__(self, capacity: int = 4096, enabled: bool = False) -> None:
        self.enabled = enabled
        self._memory: deque = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()
        self._path: Optional[str] = None
        self._file = None
        self._max_bytes = DEFAULT_MAX_BYTES
        self._max_segments = DEFAULT_MAX_SEGMENTS
        self.rotations = 0
        self._listeners: List[Callable[[Event], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop buffered events and restart the sequence (tests only)."""
        with self._lock:
            self._memory.clear()
            self._seq = 0

    @property
    def path(self) -> Optional[str]:
        return self._path

    @property
    def next_seq(self) -> int:
        return self._seq

    def attach_file(
        self,
        path: str,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
    ) -> None:
        """Start appending events as JSONL to ``path`` (with rotation)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
            self._path = path
            self._max_bytes = max(1, max_bytes)
            self._max_segments = max(1, max_segments)
            self._file = open(path, "a", encoding="utf-8")

    def detach_file(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
            self._file = None
            self._path = None

    def add_listener(self, listener: Callable[[Event], None]) -> None:
        """Invoke ``listener(event)`` after every emitted event.

        Listeners run synchronously on the emitting thread *after* the log's
        lock is released (so they may read the log), and their exceptions
        are swallowed: an observability hook (e.g. the flight recorder) must
        never break the emitter.  The synchronous call is deliberate — a
        kill-mode fault emits ``fault.injected`` and then ``os._exit``s, and
        the flight recorder's dump has to finish in between.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[Event], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self, category: str, name: str, **payload: Any) -> Optional[Event]:
        """Append one event; returns it, or None while the log is disabled."""
        if not self.enabled:
            return None
        now = time.time()
        with self._lock:
            event = Event(
                seq=self._seq, ts=now, category=category, name=name,
                payload=payload,
            )
            self._seq += 1
            self._memory.append(event)
            if self._file is not None:
                line = json.dumps(
                    event.to_dict(), separators=(",", ":"), default=str
                )
                self._file.write(line + "\n")
                self._file.flush()
                if self._file.tell() >= self._max_bytes:
                    self._rotate_locked()
        for listener in list(self._listeners):
            try:
                listener(event)
            except Exception:
                pass
        return event

    def _rotate_locked(self) -> None:
        """Rotate the live file: events.jsonl → .1 → .2 → ... (newest = .1)."""
        assert self._file is not None and self._path is not None
        self._file.close()
        oldest = f"{self._path}.{self._max_segments}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self._max_segments - 1, 0, -1):
            source = f"{self._path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self._path}.{index + 1}")
        os.replace(self._path, f"{self._path}.1")
        self._file = open(self._path, "a", encoding="utf-8")
        self.rotations += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def segment_paths(self) -> List[str]:
        """Existing log files, oldest first (rotated segments, then live)."""
        if self._path is None:
            return []
        paths = []
        for index in range(self._max_segments, 0, -1):
            candidate = f"{self._path}.{index}"
            if os.path.exists(candidate):
                paths.append(candidate)
        if os.path.exists(self._path):
            paths.append(self._path)
        return paths

    def read(
        self,
        since: int = -1,
        category: Optional[str] = None,
        name: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Event]:
        """Events with ``seq > since``, oldest first, optionally filtered.

        When a file is attached the rotated segments are re-read and
        reassembled in sequence order (the durable trail outlives the
        in-memory ring); otherwise the ring serves the read.  ``limit``
        caps the result to the *earliest* matches — pass the last seen
        sequence number back as ``since`` to page through.
        """
        with self._lock:
            if self._file is not None:
                self._file.flush()
                events = self._read_segments_locked()
            else:
                events = list(self._memory)
        events.sort(key=lambda e: e.seq)
        selected = [
            event
            for event in events
            if event.seq > since
            and (category is None or event.category == category)
            and (name is None or event.name == name)
        ]
        if limit is not None:
            selected = selected[:limit]
        return selected

    def tail(self, count: int = 20) -> List[Event]:
        """The most recent ``count`` events, oldest first."""
        events = self.read()
        return events[-count:] if count > 0 else []

    def _read_segments_locked(self) -> List[Event]:
        events: List[Event] = []
        for path in self.segment_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            events.append(Event.from_dict(json.loads(line)))
                        except (ValueError, KeyError):
                            continue  # torn line mid-rotation: skip, not fail
            except OSError:
                continue
        return events

    def __len__(self) -> int:
        return len(self._memory)

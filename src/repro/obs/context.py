"""Trace context: the identity a commit carries across thread boundaries.

The staged pipeline (PR 3) split a transaction's lifecycle across three
threads — the committing thread hashes and seals, the ``ledger-block-builder``
closes blocks, and the digest path publishes roots — but spans are nested
per-thread, so a commit's trace used to end at the WAL write.  A
:class:`TraceContext` is the minimal portable identity that stitches those
fragments back together: a ``trace_id`` minted when the transaction begins
plus the span id of the commit-side span to link back to.

The context is deliberately a tiny, JSON-friendly value object because it
rides on transient carriers only:

* ``Transaction.context["trace"]`` — begin → commit, same thread;
* the COMMIT WAL payload (``payload["trace"]``) — pre-commit hook →
  post-commit hook, across the commit critical section;
* ``DatabaseLedger`` queue metadata — commit thread → block-builder thread;
* ``Span.links`` — block builder → digest generation/upload.

It must never leak into hashed material: ``TransactionEntry`` canonical
bytes, Merkle leaves and digests are computed before the context is attached
to any payload, and :meth:`TransactionEntry.from_payload` ignores unknown
keys, so traced and untraced ledgers are byte-identical.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Optional


def mint_trace_id() -> str:
    """A fresh 64-bit trace id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """Portable (trace_id, parent span) pair carried across threads."""

    trace_id: str
    #: Span to attach to on the far side of a thread boundary; ``None`` when
    #: the context was minted outside any active span.
    span_id: Optional[int] = None

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict for WAL payloads and queue metadata."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_payload(cls, payload: Any) -> Optional["TraceContext"]:
        """Rebuild from a carrier dict; tolerant of missing/garbage input."""
        if isinstance(payload, TraceContext):
            return payload
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        span_id = payload.get("span_id")
        if span_id is not None and not isinstance(span_id, int):
            span_id = None
        return cls(trace_id=trace_id, span_id=span_id)

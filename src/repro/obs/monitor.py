"""Continuous verification: the watchtower's background verifier thread.

The paper treats verification as something a user runs on demand; GlassDB
and operational practice argue it must be *continuous* — a watchdog that
re-verifies the ledger on a cadence and raises the alarm the moment an
invariant stops holding.  :class:`ContinuousVerifier` is that watchdog:

* every ``interval`` seconds it captures a digest of the current chain tip
  (or calls a user-supplied ``digest_func`` that, say, pulls trusted digests
  from blob storage), accumulates the captured digests as its trusted set,
  and runs full ledger verification against them;
* it tracks ``verified_through_block`` versus the current block height and
  publishes the difference as the **verification lag** gauge — how many
  closed blocks the watchdog has not yet vouched for;
* it watches the table-operations view for new DROPs, catching the §3.5.2
  drop-and-recreate swap that legitimately *passes* verification;
* on any failure it emits a ``tamper.detected`` event, flips
  :attr:`healthy` to False (surfacing as HTTP 503 on ``/healthz``) and
  dispatches user-registered alert hooks.

Alert hooks and the progress callback are guarded: a broken callback is
counted on ``obs_callback_errors_total`` and never kills the monitor.

The monitor holds ``db.ledger_lock`` (the storage-stage lock) only for the
moments that need it: digest capture and the verifier's snapshot capture.
All invariant checking runs off-snapshot, so SQL sessions commit freely
while a cycle is mid-verification — the lock-narrowing that makes a
continuous watchdog compatible with heavy traffic.

With ``incremental=True`` the monitor persists a
:class:`repro.core.verify_checkpoint.VerificationCheckpoint` after each
passing cycle and verifies only the delta on subsequent cycles; every
``deep_scan_every``-th cycle runs the full-prefix scan regardless, so the
checkpoint bounds detection latency without ever becoming a trust root.
``parallelism`` fans full scans out over verification worker processes.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.verify_checkpoint import (
    VerificationCheckpoint,
    default_checkpoint_path,
)
from repro.errors import DigestError, ReplicationLagError
from repro.faults import FAULTS
from repro.obs.profiler import set_thread_role
from repro.runtime import DEFAULT_CONTEXT

FAULTS.register(
    "monitor.cycle",
    "In the monitor thread's loop, outside the per-cycle exception guard: "
    "the watchdog thread itself dies.  /healthz turns degraded — the "
    "ledger is unwatched, not unverifiable.",
)

def _monitor_metrics(reg):
    class _Families:
        cycles = reg.counter(
            "monitor_cycles_total",
            "Continuous-verification cycles, by outcome "
            "(passed, failed, skipped, idle, error)",
            ("outcome",),
        )
        cycle_seconds = reg.histogram(
            "monitor_cycle_seconds",
            "Wall time of one continuous-verification cycle",
        )
        verification_lag = reg.gauge(
            "monitor_verification_lag_blocks",
            "Closed blocks not yet covered by a passing verification",
        )
        verified_through = reg.gauge(
            "monitor_verified_through_block",
            "Highest block id covered by the last passing verification",
        )
        block_height = reg.gauge(
            "ledger_block_height", "Highest closed block id in the ledger"
        )
        tamper_detected = reg.counter(
            "monitor_tamper_detected_total",
            "Tamper detections raised by the continuous monitor",
        )
        callback_errors = reg.counter(
            "obs_callback_errors_total",
            "Exceptions raised by user-supplied observability callbacks",
            ("kind",),
        )
        cycle_modes = reg.counter(
            "monitor_cycle_mode_total",
            "Continuous-verification cycles by executed verification mode",
            ("mode",),
        )
        deep_scans = reg.counter(
            "monitor_deep_scans_total",
            "Scheduled full-prefix deep scans run by the incremental monitor",
        )

    return _Families

#: An alert hook receives (verdict: str, details: dict).
AlertHook = Callable[[str, Dict[str, Any]], None]

#: Trusted digests kept per monitor; the chain invariant covers every block
#: regardless, so older digests add cost without adding detection power.
TRUSTED_WINDOW = 16


class ContinuousVerifier:
    """Background thread re-verifying the ledger on a fixed cadence."""

    def __init__(
        self,
        db,
        interval: float = 5.0,
        digest_func: Optional[Callable[[], Any]] = None,
        alert_hooks: Sequence[AlertHook] = (),
        table_names: Optional[Sequence[str]] = None,
        watch_table_drops: bool = True,
        stderr_alerts: bool = True,
        capture_digests: bool = True,
        incremental: bool = False,
        deep_scan_every: int = 5,
        parallelism: int = 1,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        self._db = db
        self._ctx = getattr(db, "context", None) or DEFAULT_CONTEXT
        self._obs = self._ctx.obs
        self._faults = self._ctx.faults
        self._m = self._ctx.metrics.handles("monitor", _monitor_metrics)
        self.interval = interval
        self._digest_func = digest_func
        self._alert_hooks: List[AlertHook] = list(alert_hooks)
        self._table_names = list(table_names) if table_names else None
        self._watch_table_drops = watch_table_drops
        self._stderr_alerts = stderr_alerts
        self._capture_digests = capture_digests
        self.incremental = incremental
        self.deep_scan_every = max(1, deep_scan_every)
        self.parallelism = max(1, parallelism)
        self.checkpoint_path = checkpoint_path or default_checkpoint_path(db)
        self._cycles_since_deep_scan = 0
        self.deep_scans = 0
        self.last_mode = "none"
        self.checkpoint_block = -1
        self._trusted: List[Any] = []
        self._known_drops: Optional[set] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._expected_running = False
        self._cycle_done = threading.Condition()
        self.cycles = 0
        self.failures = 0
        self.last_verdict = "unknown"
        self.verified_through_block = -1
        self.block_height = -1
        self.last_findings: List[str] = []
        self.last_cycle_seconds = 0.0
        self.last_error: Optional[str] = None
        # The monitor *is* the consumer of the event trail: turn it on.
        self._obs.events.enable()

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def healthy(self) -> bool:
        """False once a cycle has failed verification (until acknowledged)."""
        return self.last_verdict != "failed"

    @property
    def expected_running(self) -> bool:
        """True between start() and stop(): the watchdog *should* be alive."""
        return self._expected_running

    def start(self) -> "ContinuousVerifier":
        if self.running:
            return self
        self._stop.clear()
        self._expected_running = True
        self._thread = threading.Thread(
            target=self._run, name=self._ctx.scoped("ledger-monitor"),
            daemon=True,
        )
        self._thread.start()
        self._ctx.events.emit(
            "monitor", "monitor.started", interval=self.interval
        )
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._expected_running = False
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self._thread = None
        self._ctx.events.emit("monitor", "monitor.stopped", cycles=self.cycles)

    def add_alert_hook(self, hook: AlertHook) -> None:
        self._alert_hooks.append(hook)

    def _run(self) -> None:
        # Fresh stack for the monitor thread: restarted monitors (and forked
        # children that inherit this slot) must not parent their spans under
        # a previous incarnation's span.
        self._obs.tracer.reset_thread()
        set_thread_role(self._ctx.scoped("monitor"))
        try:
            while not self._stop.is_set():
                # Outside run_cycle's guard: an armed fault here kills the
                # watchdog thread itself, the scenario /healthz must expose.
                self._faults.fire("monitor.cycle")
                self.run_cycle()
                self._stop.wait(self.interval)
        except Exception as exc:
            self.last_error = f"{type(exc).__name__}: {exc}"
            self._ctx.events.emit(
                "monitor", "monitor.thread_died", error=self.last_error
            )

    # ------------------------------------------------------------------
    # One verification cycle
    # ------------------------------------------------------------------

    def run_cycle(self) -> str:
        """Run one capture + verify pass; returns the cycle outcome.

        No lock is held across the cycle: digest capture and the verifier's
        snapshot capture each take the storage lock internally for only as
        long as they need it, so concurrent sessions keep committing while
        the invariant checks run.
        """
        started = time.perf_counter()
        try:
            outcome = self._cycle()
        except Exception as exc:  # the watchdog itself must not die
            outcome = "error"
            self.last_error = f"{type(exc).__name__}: {exc}"
        self.last_cycle_seconds = time.perf_counter() - started
        self.cycles += 1
        self._m.cycles.labels(outcome).inc()
        self._m.cycle_seconds.observe(self.last_cycle_seconds)
        with self._cycle_done:
            self._cycle_done.notify_all()
        return outcome

    def _select_mode(self) -> str:
        """Incremental when allowed, full on the deep-scan cadence.

        The very first cycle (no checkpoint yet) and every
        ``deep_scan_every``-th cycle run the full-prefix scan, so tampering
        of already-verified history is caught within a bounded number of
        cycles even if it somehow survived the incremental chained-hash and
        frontier checks.
        """
        if not self.incremental:
            return "full"
        if self._cycles_since_deep_scan >= self.deep_scan_every - 1:
            return "full"
        return "incremental"

    def _cycle(self) -> str:
        captured = self._capture_digest()
        if captured == "skipped":
            return "skipped"
        self.block_height = self._db.ledger.latest_block_id()
        self._m.block_height.set(max(self.block_height, 0))
        self._publish_lag()

        verdict_details: Dict[str, Any] = {}
        failed = False
        if self._trusted:
            mode = self._select_mode()
            checkpoint = None
            if mode == "incremental":
                checkpoint = VerificationCheckpoint.load(self.checkpoint_path)
            report = self._db.verify(
                self._trusted,
                table_names=self._table_names,
                progress=self._on_progress,
                parallelism=self.parallelism,
                mode=mode,
                checkpoint=checkpoint,
                build_checkpoint=self.incremental,
            )
            self.last_mode = report.mode
            self._m.cycle_modes.labels(report.mode).inc()
            if report.mode == "full" and self.incremental:
                self.deep_scans += 1
                self._cycles_since_deep_scan = 0
                self._m.deep_scans.inc()
            else:
                self._cycles_since_deep_scan += 1
            if report.ok:
                if self.incremental and report.built_checkpoint is not None:
                    report.built_checkpoint.save(self.checkpoint_path)
                    self.checkpoint_block = report.built_checkpoint.block_id
                self.verified_through_block = max(
                    d.block_id for d in self._trusted
                )
                self._m.verified_through.set(self.verified_through_block)
            else:
                failed = True
                self.last_findings = [str(f) for f in report.errors]
                verdict_details = {
                    "source": "verification",
                    "findings": self.last_findings[:10],
                }
        drops = self._check_table_drops()
        if drops:
            failed = True
            self.last_findings = [
                f"unexpected DROP of ledger table {name!r}" for name in drops
            ]
            verdict_details = {
                "source": "table_ops",
                "dropped_tables": sorted(drops),
            }
        self._publish_lag()

        if failed:
            self.failures += 1
            self.last_verdict = "failed"
            self._m.tamper_detected.inc()
            self._ctx.events.emit("tamper", "tamper.detected", **verdict_details)
            self._dispatch_alerts("failed", verdict_details)
            return "failed"
        if not self._trusted:
            self.last_verdict = "idle"
            return "idle"
        self.last_verdict = "passed"
        self.last_findings = []
        return "passed"

    def _capture_digest(self) -> Optional[str]:
        """Extend the trusted digest set; 'skipped' aborts this cycle."""
        try:
            if self._digest_func is not None:
                digest = self._digest_func()
            elif self._capture_digests:
                digest = self._db.generate_digest()
            else:
                return None
        except DigestError:
            return None  # empty ledger: nothing to verify yet
        except ReplicationLagError:
            self._ctx.events.emit(
                "monitor", "monitor.cycle_skipped", reason="replication_lag"
            )
            return "skipped"
        if digest is None:
            return None
        if not self._trusted or digest.block_id > self._trusted[-1].block_id:
            self._trusted.append(digest)
            del self._trusted[:-TRUSTED_WINDOW]
        return None

    def _check_table_drops(self) -> set:
        """New DROP entries in the table-operations view since the baseline.

        The §3.5.2 drop-and-recreate swap passes verification by design; the
        paper's answer is the table-operations view (Figure 6), so the
        watchdog reads it every cycle and alerts on drops it has not been
        told about.  Drops present when the monitor started are assumed
        intended.
        """
        if not self._watch_table_drops:
            return set()
        # The view scan reads catalog tables; take the storage lock for just
        # this read now that the cycle no longer holds it throughout.
        with self._db.ledger_lock:
            drops = {
                op["table_name"]
                for op in self._db.table_operations_view()
                if op["operation"] == "DROP"
            }
        if self._known_drops is None:
            self._known_drops = drops
            return set()
        new = drops - self._known_drops
        return new

    def acknowledge_table_drops(self) -> None:
        """Accept all current DROPs (and a failed verdict caused by them)."""
        with self._db.ledger_lock:
            self._known_drops = {
                op["table_name"]
                for op in self._db.table_operations_view()
                if op["operation"] == "DROP"
            }
        if self.last_verdict == "failed":
            self.last_verdict = "unknown"
            self.last_findings = []

    def _publish_lag(self) -> None:
        self._m.verification_lag.set(self.verification_lag)

    @property
    def verification_lag(self) -> int:
        """Closed blocks beyond the last block a passing run covered."""
        if self.block_height < 0:
            return 0
        return max(0, self.block_height - self.verified_through_block)

    # ------------------------------------------------------------------
    # Alerting and progress
    # ------------------------------------------------------------------

    def _dispatch_alerts(self, verdict: str, details: Dict[str, Any]) -> None:
        if self._stderr_alerts:
            print(
                f"[ledger-monitor] TAMPER DETECTED ({details.get('source')}): "
                f"{'; '.join(self.last_findings[:3]) or details}",
                file=sys.stderr,
            )
        for hook in self._alert_hooks:
            try:
                hook(verdict, details)
            except Exception:
                self._m.callback_errors.labels("alert").inc()

    def _on_progress(self, event) -> None:
        # Reserved for surfacing long verifications; kept cheap on purpose.
        return None

    # ------------------------------------------------------------------
    # Introspection / test support
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return {
            "running": self.running,
            "expected_running": self._expected_running,
            "healthy": self.healthy,
            "interval": self.interval,
            "cycles": self.cycles,
            "failures": self.failures,
            "last_verdict": self.last_verdict,
            "verified_through_block": self.verified_through_block,
            "block_height": self.block_height,
            "verification_lag": self.verification_lag,
            "trusted_digests": len(self._trusted),
            "last_findings": self.last_findings,
            "last_cycle_seconds": self.last_cycle_seconds,
            "last_error": self.last_error,
            "incremental": self.incremental,
            "deep_scan_every": self.deep_scan_every,
            "parallelism": self.parallelism,
            "last_mode": self.last_mode,
            "deep_scans": self.deep_scans,
            "checkpoint_block": self.checkpoint_block,
        }

    def wait_for_cycle(self, timeout: float = 10.0) -> bool:
        """Block until the next cycle completes (False on timeout)."""
        with self._cycle_done:
            return self._cycle_done.wait(timeout)

    def wait_for(
        self, predicate: Callable[[], bool], timeout: float = 10.0
    ) -> bool:
        """Block until ``predicate()`` holds, re-checked after every cycle."""
        deadline = time.monotonic() + timeout
        if predicate():
            return True
        with self._cycle_done:
            while time.monotonic() < deadline:
                self._cycle_done.wait(min(0.25, timeout))
                if predicate():
                    return True
        return predicate()

"""HTTP observability endpoint: metrics, health, events and ledger state.

A stdlib-only (`http.server`) endpoint exposing the watchtower to external
scrapers and dashboards:

* ``GET /metrics`` — Prometheus text exposition of the process registry;
* ``GET /healthz`` — JSON liveness + the monitor's last verification
  verdict; returns **503** once the continuous monitor has detected
  tampering, so ordinary HTTP health checking doubles as tamper alerting;
* ``GET /events?since=N&category=...&name=...&limit=K`` — the structured
  event log, filtered and paginated by sequence number;
* ``GET /ledger`` — chain summary: block height, pending entries, digest
  and verification lag;
* ``GET /traces?txn=N`` — the reassembled cross-thread commit lineage for
  transaction N (spans + rendered tree); without ``txn`` lists the
  transaction ids that still have a commit span in the ring;
* ``GET /locks`` — wait/hold/contention stats for every instrumented
  lock (storage/sequencer/queue stage locks, WAL writer, pipeline
  wakeup), including the current holder of each;
* ``GET /profile?seconds=N&hz=H`` — runs the sampling profiler for N
  seconds (default 2, capped at 60) and returns role totals, the top-N
  self-time frames and the folded stacks; ``format=folded`` returns the
  collapsed-stack text directly for piping into flamegraph tooling;
* ``GET /shards`` — sharded deployments: per-shard chain height, queue
  depth, sealed-block backlog and super-chain coverage lag, plus the
  super-chain height; a single (unsharded) database reports itself as one
  pseudo-shard so dashboards can scrape the same path either way.

When constructed with ``sharded=`` (a :class:`repro.core.sharded.
ShardedLedger`), ``/healthz`` reports *per-shard* verdicts — one rewritten
shard turns the overall status (and HTTP 503) while its neighbours still
read ``ok`` — and ``/ledger`` summarizes every shard.

The server binds 127.0.0.1 by default and serves from a daemon thread;
``port=0`` picks an ephemeral port (read back via :attr:`port`), which is
what the tests use.  Reads touching the database take ``db.ledger_lock``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs import OBS
from repro.obs.profiler import set_thread_role

#: /profile guardrails: a scrape must not profile forever or busy-sample.
MAX_PROFILE_SECONDS = 60.0
MAX_PROFILE_HZ = 997


class ObservabilityServer:
    """Serves /metrics, /healthz, /events, /ledger, /locks and /profile."""

    def __init__(
        self,
        db=None,
        monitor=None,
        event_log=None,
        metrics=None,
        host: str = "127.0.0.1",
        port: int = 0,
        sharded=None,
    ) -> None:
        self._db = db
        self._sharded = sharded
        self._monitor = monitor
        self._event_log = event_log if event_log is not None else OBS.events
        self._metrics = metrics if metrics is not None else OBS.metrics
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    def start(self) -> "ObservabilityServer":
        if self.running:
            return self
        # Anything scraping /metrics also wants the scraped process's own
        # vitals (RSS, fds, threads, GC) next to the ledger counters.
        from repro.obs.process import install_process_metrics

        install_process_metrics(self._metrics)
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]

        def _serve() -> None:
            set_thread_role("obs-server")
            self._httpd.serve_forever()

        self._thread = threading.Thread(
            target=_serve, name="obs-server", daemon=True
        )
        self._thread.start()
        OBS.events.emit(
            "monitor", "server.started", host=self.host, port=self.port
        )
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        OBS.events.emit("monitor", "server.stopped", port=self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _resolve_monitor(self):
        """The explicit monitor, else whatever is attached to the db now.

        Resolved per request so a monitor started *after* the server still
        shows up on /healthz.
        """
        if self._monitor is not None:
            return self._monitor
        if self._db is not None:
            return getattr(self._db, "monitor", None)
        return None

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, format: str, *args: Any) -> None:
                return  # keep test output and shells quiet

            def do_GET(self) -> None:
                parsed = urlparse(self.path)
                query = parse_qs(parsed.query)
                try:
                    if parsed.path == "/metrics":
                        self._send(
                            200,
                            server._metrics.exposition(),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    elif parsed.path == "/healthz":
                        status, body = server._render_health()
                        self._send_json(status, body)
                    elif parsed.path == "/events":
                        self._send_json(200, server._render_events(query))
                    elif parsed.path == "/ledger":
                        self._send_json(200, server._render_ledger())
                    elif parsed.path == "/traces":
                        self._send_json(200, server._render_traces(query))
                    elif parsed.path == "/locks":
                        self._send_json(200, server._render_locks())
                    elif parsed.path == "/shards":
                        self._send_json(200, server._render_shards())
                    elif parsed.path == "/profile":
                        body = server._render_profile(query)
                        if isinstance(body, str):
                            self._send(
                                200, body, "text/plain; charset=utf-8"
                            )
                        else:
                            self._send_json(200, body)
                    else:
                        self._send_json(404, {"error": "not found"})
                except Exception as exc:
                    self._send_json(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )

            def _send(self, status: int, body: str, content_type: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def _send_json(self, status: int, body: Dict[str, Any]) -> None:
                self._send(
                    status,
                    json.dumps(body, indent=2, default=str),
                    "application/json",
                )

        return Handler

    # ------------------------------------------------------------------
    # Endpoint renderers
    # ------------------------------------------------------------------

    def _render_health(self):
        """Health verdict in three tiers, worst wins.

        ``tamper-detected`` (503) — the monitor's last verification failed:
        the ledger itself is suspect.  ``degraded`` (503) — a background
        thread (block builder, continuous monitor) that should be running
        is dead: the ledger is unwatched or blocks pile up unsealed, and
        the body names the dead thread with its last error.  ``ok`` (200)
        otherwise.
        """
        if self._sharded is not None:
            return self._render_sharded_health()
        monitor = self._resolve_monitor()
        body: Dict[str, Any] = {}
        problems = []

        if monitor is None:
            body["monitor"] = "not-running"
        else:
            status = monitor.status()
            body["monitor"] = status
            if not monitor.healthy:
                body["status"] = "tamper-detected"
                return 503, body
            if getattr(monitor, "expected_running", False) and not monitor.running:
                problems.append(
                    {
                        "thread": "ledger-monitor",
                        "detail": "monitor thread died; the ledger is unwatched",
                        "last_error": status.get("last_error"),
                    }
                )

        pipeline = getattr(self._db, "pipeline", None) if self._db else None
        if pipeline is not None:
            stats = pipeline.stats()
            body["pipeline"] = stats
            if stats.get("expected_running") and not stats.get("running"):
                problems.append(
                    {
                        "thread": "ledger-block-builder",
                        "detail": "block-builder thread died"
                        + (
                            " and its supervisor gave up"
                            if stats.get("supervisor_gave_up")
                            else ""
                        ),
                        "last_error": stats.get("last_error"),
                    }
                )

        if problems:
            body["status"] = "degraded"
            body["problems"] = problems
            return 503, body
        body["status"] = "ok"
        return 200, body

    def _render_sharded_health(self):
        """Per-shard verdicts: one tampered shard 503s without smearing
        its healthy neighbours — each shard keeps its own status line."""
        body = self._sharded.health()
        status = 200 if body["status"] == "ok" else 503
        return status, body

    def _render_shards(self) -> Dict[str, Any]:
        """Per-shard chain/queue/lag summary plus the super-chain height."""
        if self._sharded is not None:
            return self._sharded.status()
        if self._db is None:
            return {"error": "no database attached"}
        # A single database renders as one pseudo-shard, so dashboards can
        # scrape /shards without caring how the deployment is laid out.
        ledger = self._db.ledger
        name = getattr(self._db, "context", None)
        shard = name.name if name is not None and name.name else "single"
        return {
            "shard_count": 1,
            "shards": {
                shard: {
                    "chain_height": ledger.closed_block_height,
                    "open_block_id": ledger.open_block_id,
                    "queue_depth": ledger.pending_entries,
                    "sealed_blocks_pending": ledger.sealed_pending(),
                    "digest_lag": None,
                }
            },
            "super_chain_height": -1,
        }

    def _render_events(self, query) -> Dict[str, Any]:
        def _first(key: str) -> Optional[str]:
            values = query.get(key)
            return values[0] if values else None

        since = int(_first("since") or -1)
        limit = int(_first("limit") or 256)
        events = self._event_log.read(
            since=since,
            category=_first("category"),
            name=_first("name"),
            limit=limit,
        )
        return {
            "events": [event.to_dict() for event in events],
            "next_since": events[-1].seq if events else since,
        }

    def _render_traces(self, query) -> Dict[str, Any]:
        """Cross-thread commit lineage for ``?txn=N`` (or list known tids)."""
        from repro.obs.tracing import build_lineage_tree, render_span_tree

        def _first(key: str) -> Optional[str]:
            values = query.get(key)
            return values[0] if values else None

        spans = OBS.tracer.recorder.spans()
        txn_text = _first("txn")
        if txn_text is None:
            tids = [
                span.attributes.get("tid")
                for span in spans
                if span.name == "txn.commit"
                and span.attributes.get("tid") is not None
            ]
            return {"transactions": tids[-100:]}
        try:
            tid = int(txn_text)
        except ValueError:
            return {"error": f"invalid txn id {txn_text!r}"}
        commit = next(
            (
                span
                for span in reversed(spans)
                if span.name == "txn.commit"
                and span.attributes.get("tid") == tid
            ),
            None,
        )
        if commit is None or commit.trace_id is None:
            return {
                "txn": tid,
                "error": "no trace recorded for this transaction "
                "(tracing disabled, or the spans were evicted)",
            }
        roots = build_lineage_tree(spans, commit.trace_id)
        lineage: list = []

        def _collect(node) -> None:
            lineage.append(node.span.to_dict())
            for child in node.children:
                _collect(child)

        for root in roots:
            _collect(root)
        return {
            "txn": tid,
            "trace_id": commit.trace_id,
            "spans": lineage,
            "tree": render_span_tree(roots),
        }

    def _render_locks(self) -> Dict[str, Any]:
        """Wait/hold/contention stats for every instrumented lock."""
        from repro.obs.lockstats import lock_stats_snapshot

        return {
            "metrics_enabled": OBS.metrics.enabled,
            "locks": lock_stats_snapshot(),
        }

    def _render_profile(self, query):
        """Run the sampling profiler for ``?seconds=N`` and report.

        Blocks the handler thread for the profiling window (the server is
        threading, so other endpoints stay responsive).  ``format=folded``
        returns raw collapsed stacks as text/plain for flamegraph tools.
        """
        from repro.obs.profiler import (
            DEFAULT_HZ,
            SamplingProfiler,
            active_profilers,
        )

        def _first(key: str, default: str) -> str:
            values = query.get(key)
            return values[0] if values else default

        try:
            seconds = float(_first("seconds", "2"))
            hz = int(_first("hz", str(DEFAULT_HZ)))
        except ValueError as exc:
            return {"error": f"bad parameter: {exc}"}
        seconds = max(0.05, min(seconds, MAX_PROFILE_SECONDS))
        hz = max(1, min(hz, MAX_PROFILE_HZ))
        running = active_profilers()
        if running:
            # Don't stack a second sampler on top of a harness --profile
            # run; report the one already in flight instead.
            snapshot = running[-1].snapshot()
            snapshot["note"] = "a profiler was already running; snapshot of it"
        else:
            profiler = SamplingProfiler(hz=hz)
            profiler.start()
            time.sleep(seconds)
            profiler.stop()
            snapshot = profiler.snapshot()
        if _first("format", "json") == "folded":
            return snapshot["folded"]
        return snapshot

    def _render_ledger(self) -> Dict[str, Any]:
        """Chain summary from the pipeline's in-memory counters.

        Deliberately avoids the storage lock: block height comes from the
        ledger's cached closed-block height and the rest from per-stage
        counters, so a long-running verification or SQL statement never
        stalls dashboard reads.
        """
        if self._db is None and self._sharded is not None:
            return self._sharded.status()
        if self._db is None:
            return {"error": "no database attached"}
        monitor = self._resolve_monitor()
        ledger = self._db.ledger
        body: Dict[str, Any] = {
            "block_height": ledger.closed_block_height,
            "open_block_id": ledger.open_block_id,
            "pending_entries": ledger.pending_entries,
            "sealed_blocks_pending": ledger.sealed_pending(),
            "block_size": ledger.block_size,
        }
        pipeline = getattr(self._db, "pipeline", None)
        if pipeline is not None:
            body["pipeline"] = pipeline.stats()
        if monitor is not None:
            body["verified_through_block"] = monitor.verified_through_block
            body["verification_lag"] = monitor.verification_lag
            body["last_verdict"] = monitor.last_verdict
            body["verification_mode"] = monitor.last_mode
            if monitor.incremental:
                body["deep_scan_every"] = monitor.deep_scan_every
                body["deep_scans"] = monitor.deep_scans
                body["checkpoint_block"] = monitor.checkpoint_block
        return body

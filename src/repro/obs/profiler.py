"""Sampling CPU profiler: where do commit-path milliseconds actually go?

The metrics registry can say a commit took 190µs and the tracer can say
which *stage* it was in, but neither can say which *frames* the time went
to — and the next round of optimisations (group commit, vectorized
hashing; ROADMAP items 1 and 3) needs frame-level attribution before
restructuring anything.  This module is a dependency-free statistical
profiler: a daemon sampler thread wakes ``hz`` times per second, walks
``sys._current_frames()`` and aggregates the observed stacks.

Two properties matter for a profiler that runs *inside* the system under
test:

* **Pay-as-you-go** — nothing is installed process-wide (no
  ``sys.setprofile``, no signal handlers).  When no profiler is running
  the cost is zero; when one is running the cost is one stack walk per
  thread per sample on the sampler thread only.
* **Role attribution** — thread ids are meaningless in a report, so the
  pipeline's long-lived threads register a *role* at thread start
  (``sql-session``, ``block-builder``, ``monitor``, ``verify-worker``,
  ``obs-server``, ``digest`` — the same places that already call
  ``OBS.tracer.reset_thread()``).  Unregistered threads fall back to
  their ``threading.Thread.name``.

Output shapes:

* :meth:`SamplingProfiler.folded` — collapsed-stack ("folded") lines,
  ``role;frame;frame… count``, directly consumable by flamegraph.pl /
  speedscope / inferno;
* :meth:`SamplingProfiler.top` — top-N frames by *self* samples (the
  frame was the leaf) with cumulative counts alongside;
* :meth:`SamplingProfiler.snapshot` — JSON-friendly dict of all of the
  above, embedded in flight-recorder bundles and the ``/profile``
  endpoint.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import weakref
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SamplingProfiler",
    "active_profile_snapshot",
    "active_profilers",
    "clear_thread_role",
    "profile",
    "set_thread_role",
    "thread_role",
    "thread_roles",
]

#: Default sampling rate.  A prime, so the sampler does not phase-lock
#: with millisecond-periodic work (timers, block cadence) and
#: systematically over- or under-sample it.
DEFAULT_HZ = 97

#: Frames deeper than this are truncated (the truncation is marked).
DEFAULT_MAX_DEPTH = 64

# ---------------------------------------------------------------------------
# Thread roles
# ---------------------------------------------------------------------------

_roles_lock = threading.Lock()
#: ident → (role, weakref to the registering thread).  The weakref guards
#: against ident reuse: once the registering thread dies, a *new* thread
#: handed the same ident must not inherit its role.
_roles: Dict[int, Tuple[str, "weakref.ref"]] = {}


def set_thread_role(role: str, ident: Optional[int] = None) -> None:
    """Tag the calling thread (or ``ident``) with a role for sample reports.

    Called at thread start next to the tracer's ``reset_thread()`` — a
    restarted thread re-registers, and the latest registration wins.
    """
    if ident is None:
        ident = threading.get_ident()
        owner = threading.current_thread()
    else:
        owner = next(
            (t for t in threading.enumerate() if t.ident == ident), None
        )
    ref = weakref.ref(owner) if owner is not None else _DEAD_REF
    with _roles_lock:
        _roles[ident] = (role, ref)


def clear_thread_role(ident: Optional[int] = None) -> None:
    if ident is None:
        ident = threading.get_ident()
    with _roles_lock:
        _roles.pop(ident, None)


def _resolve(ident: int, entry: Tuple[str, "weakref.ref"]) -> Optional[str]:
    role, ref = entry
    owner = ref()
    if owner is None or owner.ident != ident or not owner.is_alive():
        return None  # registering thread died; ident may be recycled
    return role


def thread_role(ident: Optional[int] = None) -> Optional[str]:
    """The registered role of a thread, or None."""
    if ident is None:
        ident = threading.get_ident()
    with _roles_lock:
        entry = _roles.get(ident)
    return _resolve(ident, entry) if entry is not None else None


def thread_roles() -> Dict[int, str]:
    """ident → role for every registration whose thread is still alive."""
    with _roles_lock:
        entries = list(_roles.items())
    resolved = {}
    for ident, entry in entries:
        role = _resolve(ident, entry)
        if role is not None:
            resolved[ident] = role
    return resolved


class _Dead:
    """Stand-in weakref target for idents registered without a live thread."""


_DEAD_REF = weakref.ref(_Dead())  # already collected by construction time


# ---------------------------------------------------------------------------
# The profiler
# ---------------------------------------------------------------------------

_SRC_MARKER = os.sep + "repro" + os.sep


def _short_path(filename: str) -> str:
    """Trim ``.../site-packages/…/repro/x/y.py`` to ``repro/x/y.py``."""
    index = filename.rfind(_SRC_MARKER)
    if index >= 0:
        return filename[index + 1:]
    return os.path.basename(filename)


class SamplingProfiler:
    """Aggregating stack sampler over ``sys._current_frames()``."""

    def __init__(
        self,
        hz: int = DEFAULT_HZ,
        max_depth: int = DEFAULT_MAX_DEPTH,
        include_lines: bool = False,
    ) -> None:
        if hz < 1:
            raise ValueError("hz must be at least 1")
        self.hz = hz
        self.max_depth = max_depth
        self.include_lines = include_lines
        self._interval = 1.0 / hz
        #: (role, stack tuple root→leaf) → samples
        self._counts: Counter = Counter()
        self._counts_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples = 0          # sampling ticks taken
        self.thread_samples = 0   # (tick, thread) pairs recorded
        self.overruns = 0         # ticks that took longer than the interval
        self._started_at: Optional[float] = None
        self.wall_seconds = 0.0

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True
        )
        self._thread.start()
        _register_active(self)
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self.wall_seconds += time.perf_counter() - self._started_at
            self._started_at = None
        _unregister_active(self)
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- sampling -----------------------------------------------------------

    def _run(self) -> None:
        ident = threading.get_ident()
        next_tick = time.perf_counter()
        while not self._stop.is_set():
            self.sample_once(skip_ident=ident)
            next_tick += self._interval
            delay = next_tick - time.perf_counter()
            if delay <= 0:
                # Sampling ran over the budget; re-anchor rather than
                # burst-sampling to catch up (bursts would bias the data).
                self.overruns += 1
                next_tick = time.perf_counter()
                continue
            self._stop.wait(delay)

    def sample_once(self, skip_ident: Optional[int] = None) -> None:
        """Take one sample of every live thread (callable directly in tests)."""
        frames = sys._current_frames()
        roles = thread_roles()
        names = {t.ident: t.name for t in threading.enumerate()}
        recorded = []
        for ident, frame in frames.items():
            if ident == skip_ident:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                if self.include_lines:
                    entry = (
                        f"{code.co_name} "
                        f"({_short_path(code.co_filename)}:{frame.f_lineno})"
                    )
                else:
                    entry = f"{code.co_name} ({_short_path(code.co_filename)})"
                stack.append(entry)
                frame = frame.f_back
                depth += 1
            if frame is not None:
                stack.append("[truncated]")
            stack.reverse()
            role = roles.get(ident) or names.get(ident) or f"thread-{ident}"
            recorded.append((role, tuple(stack)))
        with self._counts_lock:
            self.samples += 1
            self.thread_samples += len(recorded)
            for key in recorded:
                self._counts[key] += 1

    # -- reports ------------------------------------------------------------

    def _counts_copy(self) -> Counter:
        with self._counts_lock:
            return Counter(self._counts)

    def folded(self) -> str:
        """Collapsed-stack lines: ``role;frame;frame… <count>`` per stack.

        The role is the stack root, so a flamegraph renders one tower per
        thread role — exactly the attribution the ISSUE asks for.
        """
        counts = self._counts_copy()
        lines = []
        for (role, stack), count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        ):
            frames = ";".join((role,) + stack)
            lines.append(f"{frames} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def role_totals(self) -> Dict[str, int]:
        """Samples per thread role (one thread observed = one sample)."""
        totals: Counter = Counter()
        for (role, _stack), count in self._counts_copy().items():
            totals[role] += count
        return dict(totals)

    def top(self, n: int = 15) -> List[Dict[str, Any]]:
        """Top-``n`` frames by self samples (frame was the stack leaf).

        Each entry carries ``self``/``cum`` sample counts, their share of
        all thread samples, and the roles the self time was observed under.
        """
        counts = self._counts_copy()
        self_counts: Counter = Counter()
        cum_counts: Counter = Counter()
        frame_roles: Dict[str, Counter] = {}
        for (role, stack), count in counts.items():
            if not stack:
                continue
            leaf = stack[-1]
            self_counts[leaf] += count
            frame_roles.setdefault(leaf, Counter())[role] += count
            for frame in set(stack):
                cum_counts[frame] += count
        total = sum(self_counts.values()) or 1
        report = []
        for frame, self_count in self_counts.most_common(n):
            roles = frame_roles.get(frame, Counter())
            report.append(
                {
                    "frame": frame,
                    "self": self_count,
                    "self_pct": round(100.0 * self_count / total, 1),
                    "cum": cum_counts[frame],
                    "roles": dict(roles.most_common()),
                }
            )
        return report

    def render_top(self, n: int = 15) -> str:
        """The top-N table as aligned text for shells and harness output."""
        rows = self.top(n)
        totals = self.role_totals()
        header = (
            f"{'self':>6} {'self%':>6} {'cum':>6}  frame  [roles]"
        )
        lines = [
            f"profile: {self.thread_samples} thread-samples over "
            f"{self.samples} ticks at {self.hz}Hz "
            f"({self.wall_elapsed:.2f}s wall"
            + (f", {self.overruns} overruns" if self.overruns else "")
            + ")",
            "samples by role: "
            + (
                ", ".join(
                    f"{role}={count}"
                    for role, count in sorted(
                        totals.items(), key=lambda item: -item[1]
                    )
                )
                or "(none)"
            ),
            header,
        ]
        for row in rows:
            roles = ",".join(row["roles"])
            lines.append(
                f"{row['self']:>6} {row['self_pct']:>5.1f}% {row['cum']:>6}"
                f"  {row['frame']}  [{roles}]"
            )
        if not rows:
            lines.append("(no samples recorded)")
        return "\n".join(lines)

    @property
    def wall_elapsed(self) -> float:
        """Wall seconds profiled so far (running profilers included)."""
        if self._started_at is not None:
            return self.wall_seconds + (time.perf_counter() - self._started_at)
        return self.wall_seconds

    def snapshot(self, top_n: int = 15) -> Dict[str, Any]:
        """JSON-friendly summary for bundles and the HTTP endpoint."""
        return {
            "hz": self.hz,
            "running": self.running,
            "wall_seconds": round(self.wall_elapsed, 6),
            "samples": self.samples,
            "thread_samples": self.thread_samples,
            "overruns": self.overruns,
            "roles": self.role_totals(),
            "top": self.top(top_n),
            "folded": self.folded(),
        }


def profile(seconds: float, hz: int = DEFAULT_HZ, **kwargs: Any) -> SamplingProfiler:
    """Run a profiler for ``seconds`` and return it stopped."""
    profiler = SamplingProfiler(hz=hz, **kwargs)
    profiler.start()
    try:
        time.sleep(seconds)
    finally:
        profiler.stop()
    return profiler


# ---------------------------------------------------------------------------
# Active-profiler registry (flight bundles snapshot whatever is running)
# ---------------------------------------------------------------------------

_active_lock = threading.Lock()
_active: List[SamplingProfiler] = []


def _register_active(profiler: SamplingProfiler) -> None:
    with _active_lock:
        if profiler not in _active:
            _active.append(profiler)


def _unregister_active(profiler: SamplingProfiler) -> None:
    with _active_lock:
        if profiler in _active:
            _active.remove(profiler)


def active_profilers() -> List[SamplingProfiler]:
    with _active_lock:
        return list(_active)


def active_profile_snapshot(top_n: int = 15) -> Optional[Dict[str, Any]]:
    """Snapshot of the most recently started running profiler, if any.

    Flight-recorder bundles embed this: if a crash happens while a profile
    is being captured, the partial profile survives with the black box.
    """
    profilers = active_profilers()
    if not profilers:
        return None
    return profilers[-1].snapshot(top_n=top_n)

"""Exception hierarchy for the SQL Ledger reproduction.

All library errors derive from :class:`ReproError` so applications can catch
one base class.  The hierarchy mirrors the subsystems: engine errors for the
RDBMS substrate, ledger errors for the cryptographic ledger layer, and
verification errors that carry structured findings about detected tampering.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Engine (RDBMS substrate) errors
# ---------------------------------------------------------------------------

class EngineError(ReproError):
    """Base class for errors raised by the storage/transaction engine."""


class CatalogError(EngineError):
    """A schema object is missing, duplicated, or malformed."""


class TableNotFoundError(CatalogError):
    """The named table does not exist in the catalog."""


class ColumnNotFoundError(CatalogError):
    """The named column does not exist on the table."""


class DuplicateObjectError(CatalogError):
    """An object with the same name already exists."""


class TypeSystemError(EngineError):
    """A value does not conform to its declared SQL type."""


class ConstraintError(EngineError):
    """A uniqueness or nullability constraint was violated."""


class TransactionError(EngineError):
    """Illegal transaction state transition (e.g. commit after rollback)."""


class SavepointError(TransactionError):
    """The named savepoint does not exist in the active transaction."""


class LockError(EngineError):
    """A lock could not be acquired (conflict or deadlock)."""


class StorageError(EngineError):
    """Low-level page/heap storage failure (corrupt page, bad slot, ...)."""


class RecoveryError(EngineError):
    """Crash recovery could not restore a consistent state."""


# ---------------------------------------------------------------------------
# SQL front-end errors
# ---------------------------------------------------------------------------

class SqlError(ReproError):
    """Base class for SQL front-end failures."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SqlBindError(SqlError):
    """The parsed statement references unknown objects or is ill-typed."""


# ---------------------------------------------------------------------------
# Ledger errors
# ---------------------------------------------------------------------------

class LedgerError(ReproError):
    """Base class for ledger-layer failures."""


class LedgerConfigurationError(LedgerError):
    """Ledger feature used on a table that is not a ledger table, etc."""


class AppendOnlyViolationError(LedgerError):
    """UPDATE or DELETE attempted against an append-only ledger table."""


class DigestError(LedgerError):
    """A database digest is malformed or cannot be produced."""


class ReceiptError(LedgerError):
    """A transaction receipt could not be generated or failed verification."""


class TruncationError(LedgerError):
    """Ledger truncation preconditions were not met."""


class VerificationFailedError(LedgerError):
    """Ledger verification detected tampering.

    Carries the list of structured findings so callers can inspect what,
    exactly, failed.  The findings are instances of
    :class:`repro.core.verification.Finding`.
    """

    def __init__(self, findings) -> None:
        self.findings = list(findings)
        summary = "; ".join(str(f) for f in self.findings[:5])
        more = f" (+{len(self.findings) - 5} more)" if len(self.findings) > 5 else ""
        super().__init__(
            f"ledger verification failed with {len(self.findings)} finding(s): "
            f"{summary}{more}"
        )


# ---------------------------------------------------------------------------
# Digest-management errors
# ---------------------------------------------------------------------------

class BlobStorageError(ReproError):
    """Base class for the simulated immutable blob store."""


class ImmutabilityViolationError(BlobStorageError):
    """An attempt was made to overwrite or delete an immutable blob."""


class BlobNotFoundError(BlobStorageError):
    """The requested blob does not exist."""


class TransientStorageError(BlobStorageError):
    """A blob-store operation failed in a retryable way (simulated outage)."""


class ReplicationLagError(ReproError):
    """Digest generation refused because geo-secondaries are too far behind."""


# ---------------------------------------------------------------------------
# Fault-injection errors
# ---------------------------------------------------------------------------

class InjectedFaultError(ReproError):
    """Raised by an armed fault point (``action="fail"``).

    Carries the fault-point name so torture drivers and tests can tell an
    injected failure apart from a genuine bug surfacing mid-drill.
    """

    def __init__(self, point: str, message: str = "") -> None:
        self.point = point
        super().__init__(message or f"injected fault at {point!r}")


class InjectedCrashError(InjectedFaultError):
    """An armed fault point simulating a process crash (``action="crash"``).

    The torture harness treats this as "the process died here": the raising
    database object is abandoned (after flushing Python file buffers, which
    model data already handed to the OS) and reopened through recovery.
    """

    def __init__(self, point: str) -> None:
        super().__init__(point, f"injected crash at {point!r}")


# ---------------------------------------------------------------------------
# Crypto errors
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SerializationError(CryptoError):
    """A row could not be canonically serialized (or deserialized)."""


class MerkleError(CryptoError):
    """Invalid Merkle tree operation (empty-tree root, bad proof index...)."""


class SignatureError(CryptoError):
    """Signature generation or verification failed."""

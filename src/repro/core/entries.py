"""Transaction entries and block rows: canonical forms and hashing (§3.3.1).

A *transaction entry* captures one committed transaction in the Database
Ledger: its id, position (block, ordinal), commit metadata, and one Merkle
root per ledger table it modified.  A *block row* captures one closed block:
the Merkle root over its transaction-entry hashes, the previous block's hash
(forming the Blockchain) and bookkeeping fields.

Both have a *canonical binary serialization* that is the input to their
SHA-256 hash.  Hashes are computed, never stored alongside the data they
cover — verification always recomputes from current (possibly tampered)
state.
"""

from __future__ import annotations

import datetime as dt
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.hashing import hash_block, hash_transaction_entry

_EPOCH = dt.datetime(1970, 1, 1)


def _datetime_to_micros(value: dt.datetime) -> int:
    delta = value - _EPOCH
    return (delta.days * 86_400 + delta.seconds) * 1_000_000 + delta.microseconds


def _micros_to_datetime(value: int) -> dt.datetime:
    return _EPOCH + dt.timedelta(microseconds=value)


@dataclass(frozen=True)
class TransactionEntry:
    """One committed transaction as recorded in the Database Ledger."""

    transaction_id: int
    block_id: int
    ordinal: int
    commit_time: dt.datetime
    username: str
    table_roots: Tuple[Tuple[int, bytes], ...]  # (ledger table id, Merkle root)

    def canonical_bytes(self) -> bytes:
        """Canonical serialization hashed into the block's Merkle tree.

        Includes every field *except* block id and ordinal: those describe
        where the entry sits in the chain, which the chain itself encodes
        (leaf position in the block's Merkle tree).
        """
        name = self.username.encode("utf-8")
        parts = [
            struct.pack(
                ">QqH",
                self.transaction_id,
                _datetime_to_micros(self.commit_time),
                len(name),
            ),
            name,
            struct.pack(">H", len(self.table_roots)),
        ]
        for table_id, root in sorted(self.table_roots):
            parts.append(struct.pack(">I32s", table_id, root))
        return b"".join(parts)

    def entry_hash(self) -> bytes:
        """SHA-256 of the canonical entry (a Merkle leaf of its block)."""
        return hash_transaction_entry(self.canonical_bytes())

    def root_for_table(self, table_id: int) -> Optional[bytes]:
        for tid, root in self.table_roots:
            if tid == table_id:
                return root
        return None

    # -- WAL / JSON payload form -------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-safe form embedded in COMMIT WAL records (§3.3.2)."""
        return {
            "tid": self.transaction_id,
            "block": self.block_id,
            "ordinal": self.ordinal,
            "commit_us": _datetime_to_micros(self.commit_time),
            "username": self.username,
            "tables": {str(tid): root.hex() for tid, root in self.table_roots},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TransactionEntry":
        return cls(
            transaction_id=payload["tid"],
            block_id=payload["block"],
            ordinal=payload["ordinal"],
            commit_time=_micros_to_datetime(payload["commit_us"]),
            username=payload["username"],
            table_roots=tuple(
                sorted(
                    (int(tid), bytes.fromhex(root))
                    for tid, root in payload["tables"].items()
                )
            ),
        )

    # -- system-table row form -------------------------------------------------------

    def to_row(self) -> list:
        """Row for the ``database_ledger_transactions`` system table."""
        return [
            self.transaction_id,
            self.block_id,
            self.ordinal,
            self.commit_time,
            self.username,
            encode_table_roots(self.table_roots),
        ]

    @classmethod
    def from_row(cls, row) -> "TransactionEntry":
        return cls(
            transaction_id=row[0],
            block_id=row[1],
            ordinal=row[2],
            commit_time=row[3],
            username=row[4],
            table_roots=decode_table_roots(row[5]),
        )


def encode_table_roots(table_roots: Tuple[Tuple[int, bytes], ...]) -> bytes:
    parts = [struct.pack(">H", len(table_roots))]
    for table_id, root in sorted(table_roots):
        parts.append(struct.pack(">I32s", table_id, root))
    return b"".join(parts)


def decode_table_roots(data: bytes) -> Tuple[Tuple[int, bytes], ...]:
    (count,) = struct.unpack_from(">H", data, 0)
    offset = 2
    roots: List[Tuple[int, bytes]] = []
    for _ in range(count):
        table_id, root = struct.unpack_from(">I32s", data, offset)
        offset += 36
        roots.append((table_id, root))
    return tuple(roots)


@dataclass(frozen=True)
class BlockRow:
    """One closed block of the Database Ledger blockchain."""

    block_id: int
    previous_block_hash: Optional[bytes]  # None only for the first block
    transactions_root: bytes
    transaction_count: int
    closed_time: dt.datetime

    def canonical_bytes(self) -> bytes:
        prev = self.previous_block_hash
        return struct.pack(
            ">QB32s32sQq",
            self.block_id,
            0 if prev is None else 1,
            prev or b"\x00" * 32,
            self.transactions_root,
            self.transaction_count,
            _datetime_to_micros(self.closed_time),
        )

    def block_hash(self) -> bytes:
        """SHA-256 of the canonical block — what a Database Digest captures."""
        return hash_block(self.canonical_bytes())

    def to_row(self) -> list:
        """Row for the ``database_ledger_blocks`` system table."""
        return [
            self.block_id,
            self.previous_block_hash,
            self.transactions_root,
            self.transaction_count,
            self.closed_time,
        ]

    @classmethod
    def from_row(cls, row) -> "BlockRow":
        return cls(
            block_id=row[0],
            previous_block_hash=row[1],
            transactions_root=row[2],
            transaction_count=row[3],
            closed_time=row[4],
        )

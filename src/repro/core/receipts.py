"""Transaction receipts: non-repudiation without per-transaction signing (§5.1).

A receipt proves — independently of the database — that a transaction was
recorded in the ledger.  It contains the transaction entry, a Merkle proof
linking the entry's hash to its block's transactions root, the block header,
and an RSA signature over the block hash.  One signature covers every
transaction in the block, which is the paper's point: signing each of the
100K transactions in a block individually would be prohibitively expensive,
while one signature per block is nearly free.

Receipt verification needs only the receipt and the signer's public key —
the ledger can be tampered with or destroyed and the receipt still stands.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.digest import BlockHeader
from repro.core.entries import TransactionEntry
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.rsa import RsaPublicKey
from repro.errors import ReceiptError


@dataclass(frozen=True)
class TransactionReceipt:
    """Self-contained proof that a transaction is part of the ledger."""

    entry: TransactionEntry
    proof: MerkleProof
    block_header: BlockHeader
    block_signature: bytes

    def verify(self, public_key: RsaPublicKey) -> bool:
        """Check the receipt end to end.

        1. The entry's hash folds through the Merkle proof to the block
           header's transactions root (the entry is in the block).
        2. The signature over the recomputed block hash verifies (the block
           is the one the database operator signed).
        """
        if not self.proof.verify(
            self.entry.entry_hash(), self.block_header.transactions_root
        ):
            return False
        return public_key.verify(self.block_header.block_hash(), self.block_signature)

    def to_json(self) -> str:
        return json.dumps(
            {
                "entry": self.entry.to_payload(),
                "proof": self.proof.to_dict(),
                "block_header": self.block_header.to_dict(),
                "block_signature": self.block_signature.hex(),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "TransactionReceipt":
        try:
            data = json.loads(text)
            return cls(
                entry=TransactionEntry.from_payload(data["entry"]),
                proof=MerkleProof.from_dict(data["proof"]),
                block_header=BlockHeader.from_dict(data["block_header"]),
                block_signature=bytes.fromhex(data["block_signature"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ReceiptError(f"malformed receipt document: {exc}") from exc


def generate_receipt(db, transaction_id: int) -> TransactionReceipt:
    """Build the receipt for ``transaction_id`` (closing its block if open).

    Raises :class:`ReceiptError` when the transaction is unknown or touched
    no ledger table (such transactions have no ledger entry).
    """
    entry = db.ledger.transaction_entry(transaction_id)
    if entry is None:
        raise ReceiptError(
            f"transaction {transaction_id} is not recorded in the ledger "
            "(it may not have modified any ledger table)"
        )
    block = db.ledger.block(entry.block_id)
    if block is None:
        # The transaction sits in a still-open or sealed-but-unclosed
        # block; drain the pipeline so a signed, chain-linked block exists
        # to anchor the receipt.
        db.pipeline.drain(seal_open=True)
        block = db.ledger.block(entry.block_id)
        if block is None:
            raise ReceiptError(
                f"block {entry.block_id} for transaction {transaction_id} "
                "could not be closed"
            )
    # One Merkle tree and ONE signature per closed block, cached and shared
    # by every receipt in the block — the amortization §5.1 is about.
    cache = getattr(db, "_receipt_block_cache", None)
    if cache is None:
        cache = {}
        db._receipt_block_cache = cache
    header = BlockHeader.from_block_row(block)
    cache_key = (block.block_id, block.block_hash())
    cached = cache.get(cache_key)
    if cached is None:
        siblings = db.ledger.transactions_in_block(entry.block_id)
        tree = MerkleTree([e.entry_hash() for e in siblings])
        positions = {
            e.transaction_id: index for index, e in enumerate(siblings)
        }
        signature = db.signing_key().sign(header.block_hash())
        cached = (tree, positions, signature)
        cache[cache_key] = cached
    tree, positions, signature = cached
    position = positions.get(transaction_id)
    if position is None:
        raise ReceiptError(
            f"transaction {transaction_id} missing from block {entry.block_id}"
        )
    return TransactionReceipt(
        entry=entry,
        proof=tree.proof(position),
        block_header=header,
        block_signature=signature,
    )

"""The ledger-of-ledgers: a Merkle super-chain over per-shard chain tips.

A sharded deployment (:mod:`repro.core.sharded`) runs N independent Database
Ledgers, each with its own block chain and digests.  Anchoring N digests per
interval in immutable storage works, but gives the relying party N trust
roots to manage and no single statement covering the whole deployment.  The
super-chain collapses them back to one:

* periodically, every shard's chain tip — ``(shard name, block id, block
  hash)`` — is collected and hashed into a Merkle tree (leaf =
  ``hash_leaf(canonical tip bytes)``, interior nodes as in
  :mod:`repro.crypto.merkle`);
* the resulting **super-block** records the tips, the Merkle root over
  them, the previous super-block's hash, and the sealing time — the same
  blocks-form-a-chain construction the Database Ledger uses one level up;
* the super-block *hash* is the single value worth anchoring externally:
  it commits to every shard's entire history transitively (tip block hash →
  previous block hashes → transaction Merkle roots → row versions).

Trust boundary: the super-chain file lives next to the shard directories
and is therefore tamperable by the same adversary as the shards.  Like
database digests, it is not self-certifying — its power comes from
cross-checking: a rewritten shard chain (even one regenerated
self-consistently, digests and all) no longer matches the tips sealed in
earlier super-blocks, so re-deriving the super-root exposes the rewrite.
Anchor super-block hashes in :class:`repro.digests.blob_storage.
ImmutableBlobStorage` (or print them to a notebook) to make that
comparison adversary-proof.

Storage is an append-only JSONL file: one JSON document per super-block,
written with fsync before rename-free append (the file is only ever
appended to; a torn final line is detected and ignored on load, exactly
like a torn WAL tail).
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashing import HASH_SIZE, hash_leaf, sha256
from repro.crypto.merkle import MerkleTree
from repro.errors import LedgerConfigurationError

#: Tip recorded for a shard whose ledger has no closed block yet.
EMPTY_TIP_BLOCK_ID = -1
EMPTY_TIP_HASH = b"\x00" * HASH_SIZE


@dataclass(frozen=True)
class ShardTip:
    """One shard's chain tip as sealed into a super-block."""

    shard: str
    block_id: int
    block_hash: bytes

    def canonical_bytes(self) -> bytes:
        name = self.shard.encode("utf-8")
        return (
            struct.pack(">H", len(name))
            + name
            + struct.pack(">q32s", self.block_id, self.block_hash)
        )

    def leaf_hash(self) -> bytes:
        """The Merkle leaf this tip contributes to the super-root."""
        return hash_leaf(self.canonical_bytes())

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "block_id": self.block_id,
            "block_hash": self.block_hash.hex(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardTip":
        return cls(
            shard=data["shard"],
            block_id=int(data["block_id"]),
            block_hash=bytes.fromhex(data["block_hash"]),
        )


def super_root(tips: Sequence[ShardTip]) -> bytes:
    """Merkle root over the shard tips, in shard-name order.

    Sorting by shard name makes the root independent of collection order,
    so a re-derivation can never mismatch merely because two threads
    enumerated the shards differently.
    """
    ordered = sorted(tips, key=lambda tip: tip.shard)
    return MerkleTree([tip.leaf_hash() for tip in ordered]).root()


@dataclass(frozen=True)
class SuperBlock:
    """One sealed entry of the super-chain."""

    super_id: int
    previous_hash: Optional[bytes]  # None only for the first super-block
    tips: Tuple[ShardTip, ...]
    merkle_root: bytes
    sealed_time: str

    def canonical_bytes(self) -> bytes:
        prev = self.previous_hash
        sealed = self.sealed_time.encode("utf-8")
        return (
            struct.pack(
                ">QB32s32sH",
                self.super_id,
                0 if prev is None else 1,
                prev or b"\x00" * HASH_SIZE,
                self.merkle_root,
                len(sealed),
            )
            + sealed
        )

    def super_hash(self) -> bytes:
        """The anchorable value: commits to every shard's history."""
        return sha256(b"\x03" + self.canonical_bytes())

    def tip_for(self, shard: str) -> Optional[ShardTip]:
        for tip in self.tips:
            if tip.shard == shard:
                return tip
        return None

    def to_dict(self) -> dict:
        return {
            "super_id": self.super_id,
            "previous_hash": (
                self.previous_hash.hex() if self.previous_hash else None
            ),
            "tips": [tip.to_dict() for tip in self.tips],
            "merkle_root": self.merkle_root.hex(),
            "sealed_time": self.sealed_time,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SuperBlock":
        previous = data.get("previous_hash")
        return cls(
            super_id=int(data["super_id"]),
            previous_hash=bytes.fromhex(previous) if previous else None,
            tips=tuple(ShardTip.from_dict(t) for t in data["tips"]),
            merkle_root=bytes.fromhex(data["merkle_root"]),
            sealed_time=data["sealed_time"],
        )


class SuperChain:
    """Append-only JSONL store of super-blocks.

    Not thread-safe by itself; :class:`repro.core.sharded.ShardedLedger`
    serializes sealing through its own lock.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._blocks: List[SuperBlock] = []
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    block = SuperBlock.from_dict(json.loads(line))
                except (ValueError, KeyError):
                    # A torn final line from a crash mid-append: everything
                    # before it is intact, the partial write never counted.
                    break
                self._blocks.append(block)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Id of the latest super-block (-1 when empty)."""
        return self._blocks[-1].super_id if self._blocks else -1

    def blocks(self) -> List[SuperBlock]:
        return list(self._blocks)

    def latest(self) -> Optional[SuperBlock]:
        return self._blocks[-1] if self._blocks else None

    def block(self, super_id: int) -> Optional[SuperBlock]:
        if 0 <= super_id < len(self._blocks):
            return self._blocks[super_id]
        return None

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------

    def seal(self, tips: Sequence[ShardTip], sealed_time: str) -> SuperBlock:
        """Append a super-block over ``tips``; fsynced before returning."""
        previous = self._blocks[-1] if self._blocks else None
        block = SuperBlock(
            super_id=len(self._blocks),
            previous_hash=previous.super_hash() if previous else None,
            tips=tuple(sorted(tips, key=lambda tip: tip.shard)),
            merkle_root=super_root(tips),
            sealed_time=sealed_time,
        )
        line = json.dumps(block.to_dict(), sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self._blocks.append(block)
        return block

    # ------------------------------------------------------------------
    # Self-verification
    # ------------------------------------------------------------------

    def verify_chain(self) -> List[str]:
        """Internal-consistency findings: ids, linkage, recomputed roots.

        Returns human-readable findings (empty = consistent).  This checks
        the super-chain *file* against itself; cross-checking the sealed
        tips against the live shard chains is the sharded ledger's job.
        """
        findings: List[str] = []
        previous: Optional[SuperBlock] = None
        for index, block in enumerate(self._blocks):
            if block.super_id != index:
                findings.append(
                    f"super-block at position {index} has id {block.super_id}"
                )
            recomputed = super_root(block.tips)
            if recomputed != block.merkle_root:
                findings.append(
                    f"super-block {block.super_id}: stored Merkle root does "
                    f"not match the root recomputed over its shard tips"
                )
            if previous is None:
                if block.previous_hash is not None:
                    findings.append(
                        f"first super-block {block.super_id} claims a "
                        "previous hash"
                    )
            else:
                expected = previous.super_hash()
                if block.previous_hash != expected:
                    findings.append(
                        f"super-block {block.super_id}: previous-hash link "
                        f"broken (chain rewritten between "
                        f"{previous.super_id} and {block.super_id})"
                    )
            previous = block
        return findings


def load_super_chain(path: str) -> SuperChain:
    """Open the super-chain at ``path`` (which need not exist yet)."""
    directory = os.path.dirname(path)
    if directory and not os.path.isdir(directory):
        raise LedgerConfigurationError(
            f"super-chain directory {directory!r} does not exist"
        )
    return SuperChain(path)

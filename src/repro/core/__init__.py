"""The paper's contribution: ledger tables, the Database Ledger, digests,
verification, receipts, schema evolution and truncation.

Everything here builds on the :mod:`repro.engine` substrate via its hook
interface — the engine has no ledger knowledge, mirroring how SQL Ledger
plugs into SQL Server's DML plans, commit pipeline and recovery (paper §3).

The main entry point is :class:`repro.core.ledger_database.LedgerDatabase`.
"""

from repro.core.digest import BlockHeader, DatabaseDigest, verify_digest_chain
from repro.core.ledger_database import LedgerDatabase
from repro.core.receipts import TransactionReceipt
from repro.core.recovery_advisor import RecoveryAdvisor, RecoveryPlan
from repro.core.verification import Finding, VerificationReport

__all__ = [
    "LedgerDatabase",
    "DatabaseDigest",
    "BlockHeader",
    "verify_digest_chain",
    "TransactionReceipt",
    "Finding",
    "VerificationReport",
    "RecoveryAdvisor",
    "RecoveryPlan",
]

"""The hidden ledger system columns and schema extension helpers (§3.1).

Every updateable ledger table (and its history table) is extended with four
hidden BIGINT columns tracking which transaction/operation created and
deleted each row version:

* ``ledger_start_transaction_id`` / ``ledger_start_sequence_number``
* ``ledger_end_transaction_id`` / ``ledger_end_sequence_number``

Append-only ledger tables get only the start pair — nothing ever deletes
their rows.  The columns are hidden from applications (``SELECT *`` and
positional INSERT skip them) but are exposed through ledger views and used
by verification to group row versions back into per-transaction Merkle
trees.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.engine.schema import Column, TableSchema
from repro.engine.types import BIGINT

START_TRANSACTION = "ledger_start_transaction_id"
START_SEQUENCE = "ledger_start_sequence_number"
END_TRANSACTION = "ledger_end_transaction_id"
END_SEQUENCE = "ledger_end_sequence_number"

START_COLUMNS = (START_TRANSACTION, START_SEQUENCE)
END_COLUMNS = (END_TRANSACTION, END_SEQUENCE)
ALL_SYSTEM_COLUMNS = START_COLUMNS + END_COLUMNS


def extend_with_system_columns(
    schema: TableSchema, include_end: bool
) -> TableSchema:
    """Append the hidden system columns to a user schema."""
    extended = schema
    names = ALL_SYSTEM_COLUMNS if include_end else START_COLUMNS
    for name in names:
        extended = extended.with_column_added(
            Column(name, BIGINT, nullable=True, hidden=True)
        )
    return extended


def history_schema_for(ledger_schema: TableSchema, history_name: str) -> TableSchema:
    """Derive the history-table schema from a ledger table's schema (§2.1).

    The history table mirrors every physical column — user and system — but
    drops the primary key and all indexes: several versions of the same key
    coexist there, and the history table gets its own physical design.
    """
    return TableSchema(history_name, ledger_schema.columns, primary_key=None)


def start_ordinals(schema: TableSchema) -> Tuple[int, int]:
    return (
        schema.column(START_TRANSACTION).ordinal,
        schema.column(START_SEQUENCE).ordinal,
    )


def end_ordinals(schema: TableSchema) -> Tuple[int, int]:
    return (
        schema.column(END_TRANSACTION).ordinal,
        schema.column(END_SEQUENCE).ordinal,
    )


def has_end_columns(schema: TableSchema) -> bool:
    return schema.has_column(END_TRANSACTION)


def mask_end_columns(schema: TableSchema, row: Sequence[Any]) -> List[Any]:
    """Return a copy of ``row`` with the end columns NULLed.

    Verification uses this to recover the *as-created* form of a history row:
    when the version was first written its end columns were NULL, and that is
    the form the creating transaction hashed (§3.4.1, invariant 4).
    """
    masked = list(row)
    if has_end_columns(schema):
        end_tid, end_seq = end_ordinals(schema)
        masked[end_tid] = None
        masked[end_seq] = None
    return masked

"""Immutable verification snapshots: capture fast, verify off-lock (§2.3, §6).

The paper observes that verification cost is proportional to the data
scanned, and a practical deployment cannot stall the OLTP path while the
scan runs.  This module captures everything verification needs — sealed
blocks, transaction entries, and per-table frozen record streams — in one
short critical section under the storage lock.  All invariant checks then
run against the snapshot with no locks held, so commits proceed concurrently
with verification: lock hold time drops from O(history) to O(snapshot
capture).

The snapshot is cheap because stored records are immutable ``bytes``;
materializing a heap scan is a list of references, not a deep copy.  The
expensive work — decoding, canonical re-serialization, SHA-256 over every
row version — happens off-lock (and optionally in worker processes, see
:mod:`repro.core.verify_parallel`).

``record_events`` is the single routine that turns one stored record into
its verification events; the serial verifier, the worker pool, and the
incremental frontier builder all share it so the three paths can never
disagree on hashing semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import system_columns as sc
from repro.core.entries import BlockRow, TransactionEntry
from repro.core.ledger_view import canonical_view_definition
from repro.crypto.hashing import LeafHashCache, hash_leaf
from repro.engine.record import decode_record, hashable_payload, key_tuple
from repro.runtime import DEFAULT_CONTEXT


def _snapshot_metrics(reg):
    class _Families:
        seconds = reg.histogram(
            "verify_snapshot_seconds",
            "Wall time spent capturing a verification snapshot "
            "(storage lock held)",
        )
        records = reg.counter(
            "verify_snapshot_records_total",
            "Stored records referenced by verification snapshots",
        )

    return _Families

#: One row-version event: (transaction id, sequence, leaf digest).
Event = Tuple[Optional[int], int, bytes]
#: Cached per-record derivation: (events, clustered-key sort key).
RecordDerivation = Tuple[Tuple[Event, ...], Tuple]


def schema_fingerprint(relation_name: str, schema, is_history: bool) -> str:
    """Content fingerprint of everything leaf hashing depends on.

    Covers the relation's role (base vs. history changes how many events a
    record yields), every column's name, ordinal, exact type (id + metadata,
    so ``tamper_column_type`` changes the fingerprint), hidden/dropped flags,
    and the primary-key ordinals used for clustered ordering.  Cache entries
    keyed by this fingerprint can never alias across schema changes.
    """
    parts: List[str] = [relation_name, "history" if is_history else "base"]
    for column in schema.columns:
        parts.append(
            f"{column.ordinal}:{column.name}:{column.sql_type.type_id}:"
            f"{column.sql_type.type_meta().hex()}:"
            f"{int(column.hidden)}{int(column.dropped)}"
        )
    parts.append(",".join(str(o) for o in schema.primary_key_ordinals()))
    return "|".join(parts)


@dataclass
class RelationSnapshot:
    """Frozen record stream of one relation (a base table or its history)."""

    name: str
    schema: Any
    fingerprint: str
    is_history: bool
    key_ordinals: Tuple[int, ...]
    #: (rendered row id, stored record bytes) in heap order.
    records: List[Tuple[str, bytes]]
    #: Base relations only: index name -> stored records of the index heap.
    index_records: Dict[str, List[bytes]] = field(default_factory=dict)


@dataclass
class TableSnapshot:
    """One ledger table: base relation plus its optional history relation."""

    table_id: int
    name: str
    base: RelationSnapshot
    history: Optional[RelationSnapshot] = None

    def relations(self) -> List[RelationSnapshot]:
        out = [self.base]
        if self.history is not None:
            out.append(self.history)
        return out


@dataclass
class VerificationSnapshot:
    """Everything a verification run reads, captured at one instant."""

    database_guid: str
    first_block_id: int
    open_block_id: int
    anchor: Optional[Tuple[int, bytes]]
    cutoff_tid: Optional[int]
    entries: Dict[int, TransactionEntry]
    blocks: Dict[int, BlockRow]
    tables: List[TableSnapshot]
    #: view name -> stored definition, from the views catalog.
    views_stored: Dict[str, str]
    #: (view name, canonically re-derived definition) per ledger table.
    views_expected: List[Tuple[str, str]]
    #: Seconds the storage lock was held during capture.
    capture_seconds: float = 0.0
    total_records: int = 0
    #: Entries grouped by block id, sorted by ordinal (derived, off-lock).
    entries_by_block: Dict[int, List[TransactionEntry]] = field(
        default_factory=dict
    )

    def finalize(self) -> None:
        """Derive secondary structures; runs off-lock after capture."""
        by_block: Dict[int, List[TransactionEntry]] = {}
        for entry in self.entries.values():
            by_block.setdefault(entry.block_id, []).append(entry)
        for group in by_block.values():
            group.sort(key=lambda e: e.ordinal)
        self.entries_by_block = by_block


def _snapshot_relation(table, is_history: bool) -> RelationSnapshot:
    records = [(str(rid), record) for rid, record in table.heap.scan()]
    relation = RelationSnapshot(
        name=table.name,
        schema=table.schema,
        fingerprint=schema_fingerprint(table.name, table.schema, is_history),
        is_history=is_history,
        key_ordinals=table.schema.primary_key_ordinals(),
        records=records,
    )
    for index in table.nonclustered.values():
        relation.index_records[index.name] = list(index.scan_records())
    return relation


def _truncation_cutoff_tid(db) -> Optional[int]:
    from repro.core.ledger_database import TRUNCATIONS_TABLE

    try:
        table = db.engine.table(TRUNCATIONS_TABLE)
    except Exception:
        return None
    cutoff = None
    ordinal = table.schema.column("truncated_through_tid").ordinal
    for _, row in table.scan():
        value = row[ordinal]
        if cutoff is None or value > cutoff:
            cutoff = value
    return cutoff


def capture_snapshot(
    db, table_names: Optional[Sequence[str]] = None
) -> VerificationSnapshot:
    """Capture a consistent verification snapshot under the storage lock.

    Drains the pipeline without sealing the open block (sealed blocks close
    so the chain tip is complete; open-block entries keep verifying as
    uncovered transactions), flushes the entry queue, then materializes
    references to every stored record verification will read.  The lock is
    released before any hashing happens.
    """
    from repro.core.ledger_database import VIEWS_TABLE

    ledger = db.ledger
    ctx = getattr(db, "context", None) or DEFAULT_CONTEXT
    started = time.perf_counter()
    with ledger.storage_lock, ctx.tracer.span("verify.snapshot"):
        db.pipeline.drain(seal_open=False)
        ledger.flush_queue()
        entries = {e.transaction_id: e for e in ledger.all_entries()}
        blocks = {b.block_id: b for b in ledger.blocks()}
        cutoff_tid = _truncation_cutoff_tid(db)

        all_tables = db.ledger_tables()
        if table_names is not None:
            wanted = set(table_names)
            target_tables = [t for t in all_tables if t.name in wanted]
        else:
            target_tables = all_tables

        tables: List[TableSnapshot] = []
        for table in target_tables:
            base = _snapshot_relation(table, is_history=False)
            history_rel = None
            history_id = table.options.get("history_table_id")
            if history_id is not None:
                history = db.engine.table_by_id(history_id)
                history_rel = _snapshot_relation(history, is_history=True)
            tables.append(
                TableSnapshot(
                    table_id=table.table_id,
                    name=table.name,
                    base=base,
                    history=history_rel,
                )
            )

        views = db.engine.table(VIEWS_TABLE)
        name_ord = views.schema.column("view_name").ordinal
        def_ord = views.schema.column("definition").ordinal
        views_stored = {
            row[name_ord]: row[def_ord] for _, row in views.scan()
        }
        views_expected: List[Tuple[str, str]] = []
        for table in all_tables:
            history_id = table.options.get("history_table_id")
            history = (
                db.engine.table_by_id(history_id) if history_id else None
            )
            views_expected.append(
                (
                    f"{table.name}_ledger",
                    canonical_view_definition(
                        table.name,
                        history.name if history else None,
                        [c.name for c in table.schema.visible_columns],
                    ),
                )
            )

        snapshot = VerificationSnapshot(
            database_guid=db.database_guid,
            first_block_id=ledger.first_block_id(),
            open_block_id=ledger.open_block_id,
            anchor=ledger.anchor,
            cutoff_tid=cutoff_tid,
            entries=entries,
            blocks=blocks,
            tables=tables,
            views_stored=views_stored,
            views_expected=views_expected,
        )
    snapshot.capture_seconds = time.perf_counter() - started
    snapshot.total_records = sum(
        len(rel.records) + sum(len(r) for r in rel.index_records.values())
        for tbl in snapshot.tables
        for rel in tbl.relations()
    )
    snapshot.finalize()
    if ctx.metrics.enabled:
        families = ctx.metrics.handles("verify_snapshot", _snapshot_metrics)
        families.seconds.observe(snapshot.capture_seconds)
        families.records.inc(snapshot.total_records)
    return snapshot


def record_events(
    relation: RelationSnapshot, record: bytes
) -> RecordDerivation:
    """Derive the verification events and sort key for one stored record.

    Base relation records yield one event attributed to the creating
    transaction; history records yield two — the as-created form (end
    columns masked to NULL, exactly as the creating transaction hashed the
    version) and the as-deleted full row (hashed by the deleting
    transaction).  ``hashable_payload`` skips NULL values, so a live row's
    NULL end columns hash identically to the masked history form — the
    property that keeps per-table event streams append-only and makes
    incremental Merkle frontiers sound.

    Raises :class:`repro.errors.StorageError` on undecodable bytes.
    """
    schema = relation.schema
    row = decode_record(schema, record)
    if relation.is_history:
        start_tid, start_seq = sc.start_ordinals(schema)
        end_tid, end_seq = sc.end_ordinals(schema)
        created = sc.mask_end_columns(schema, row)
        events: Tuple[Event, ...] = (
            (
                row[start_tid],
                row[start_seq] if row[start_seq] is not None else -1,
                hash_leaf(hashable_payload(schema, created)),
            ),
            (
                row[end_tid],
                row[end_seq] if row[end_seq] is not None else -1,
                hash_leaf(hashable_payload(schema, row)),
            ),
        )
    else:
        start_tid, start_seq = sc.start_ordinals(schema)
        events = (
            (
                row[start_tid],
                row[start_seq] if row[start_seq] is not None else -1,
                hash_leaf(hashable_payload(schema, row)),
            ),
        )
    if relation.key_ordinals:
        order_key = key_tuple([row[o] for o in relation.key_ordinals])
    else:
        order_key = key_tuple(list(row))
    return events, order_key


def cached_record_events(
    relation: RelationSnapshot,
    record: bytes,
    cache: Optional[LeafHashCache],
) -> RecordDerivation:
    """Cache-assisted :func:`record_events`.

    The cache key covers the schema fingerprint and the exact stored bytes,
    so a hit is always byte-identical to recomputation — tampered records
    miss and are hashed from their tampered bytes (see
    :class:`repro.crypto.hashing.LeafHashCache` for the soundness argument).
    """
    if cache is None:
        return record_events(relation, record)
    # One key build serves both the lookup and the fill.
    key = cache.make_key(relation.fingerprint, record)
    value = cache.get_by_key(key)
    if value is not None:
        return value
    value = record_events(relation, record)
    cache.put_by_key(key, value)
    return value

"""Recovery from tampering: triage and repair planning (§3.7).

When verification fails, §3.7 separates the damage into two categories:

1. **passive data** — values that do not steer later transactions (e.g. a
   payment's memo line).  Repair: restore the latest verifiable backup
   *beside* the production database, copy the authentic rows back, and keep
   all previously issued digests (the chain was never forked).

2. **operational data** — values later transactions *read* to compute their
   own writes (e.g. an account balance).  Transactions that ran after the
   tampering may have produced wrong-but-correctly-ledgered results.
   Repair: restore the latest verifiable backup, re-execute the business
   transactions after the backup point, and invalidate the digests issued
   in between — informing every external party that holds them.

The advisor automates the triage: given a failed verification report and a
declaration of which tables carry operational data, it determines the
affected transactions, the earliest compromised point, and emits the §3.7
repair plan.  The repair itself stays manual, as in the paper.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.core.verification import Finding, VerificationReport

#: Severity ordering for the recommended strategies.
STRATEGY_NO_ACTION = "no_action"
STRATEGY_RESTORE_AND_REPAIR = "restore_and_repair_rows"
STRATEGY_RESTORE_AND_REPLAY = "restore_and_reexecute_transactions"
STRATEGY_CHAIN_COMPROMISED = "restore_required_chain_compromised"


@dataclass
class RecoveryPlan:
    """The §3.7 triage outcome for one failed verification."""

    strategy: str
    affected_tables: List[str] = field(default_factory=list)
    affected_transactions: List[int] = field(default_factory=list)
    earliest_affected_transaction: Optional[int] = None
    earliest_affected_commit_time: Optional[dt.datetime] = None
    digests_remain_valid: bool = True
    steps: List[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"recovery strategy: {self.strategy}"]
        if self.affected_tables:
            lines.append(f"affected tables: {', '.join(self.affected_tables)}")
        if self.earliest_affected_transaction is not None:
            lines.append(
                "earliest affected transaction: "
                f"{self.earliest_affected_transaction}"
                + (
                    f" (committed {self.earliest_affected_commit_time})"
                    if self.earliest_affected_commit_time
                    else ""
                )
            )
        lines.append(
            "previously issued digests remain valid"
            if self.digests_remain_valid
            else "digests issued after the earliest affected transaction "
                 "must be invalidated and their holders notified"
        )
        lines.extend(f"  {i + 1}. {step}" for i, step in enumerate(self.steps))
        return "\n".join(lines)


class RecoveryAdvisor:
    """Builds a :class:`RecoveryPlan` from a failed verification report."""

    def __init__(self, db, operational_tables: Sequence[str] = ()) -> None:
        """``operational_tables`` declares which ledger tables hold data that
        later transactions read to compute their writes (category 2)."""
        self._db = db
        self._operational = set(operational_tables)

    def plan(self, report: VerificationReport) -> RecoveryPlan:
        if report.ok:
            return RecoveryPlan(
                strategy=STRATEGY_NO_ACTION,
                steps=["verification passed; nothing to recover"],
            )

        tables = self._affected_tables(report.errors)
        transactions = self._affected_transactions(report.errors)
        chain_damaged = any(
            f.invariant in ("digest", "chain", "block_root")
            for f in report.errors
        )
        earliest = min(transactions) if transactions else None
        commit_time = self._commit_time_of(earliest)

        if chain_damaged:
            return RecoveryPlan(
                strategy=STRATEGY_CHAIN_COMPROMISED,
                affected_tables=sorted(tables),
                affected_transactions=sorted(transactions),
                earliest_affected_transaction=earliest,
                earliest_affected_commit_time=commit_time,
                digests_remain_valid=False,
                steps=[
                    "restore the most recent backup that verifies cleanly",
                    "treat all digests issued after the fork point as "
                    "invalid and notify every party holding them",
                    "re-execute business transactions committed after the "
                    "restored point",
                    "investigate how the adversary gained write access to "
                    "the ledger system tables",
                ],
            )

        operational_hit = bool(tables & self._operational)
        if operational_hit:
            return RecoveryPlan(
                strategy=STRATEGY_RESTORE_AND_REPLAY,
                affected_tables=sorted(tables),
                affected_transactions=sorted(transactions),
                earliest_affected_transaction=earliest,
                earliest_affected_commit_time=commit_time,
                digests_remain_valid=False,
                steps=[
                    "restore the most recent backup that verifies cleanly",
                    "re-execute business transactions committed after the "
                    "restored point (their inputs may have been poisoned)",
                    "invalidate digests issued for the affected period and "
                    "notify partners/auditors of the fork",
                ],
            )

        return RecoveryPlan(
            strategy=STRATEGY_RESTORE_AND_REPAIR,
            affected_tables=sorted(tables),
            affected_transactions=sorted(transactions),
            earliest_affected_transaction=earliest,
            earliest_affected_commit_time=commit_time,
            digests_remain_valid=True,
            steps=[
                "restore the most recent verifiable backup beside production",
                "copy the authentic versions of the rows reported by "
                "verification back into production",
                "re-run verification: all previously issued digests remain "
                "valid because the chain was never forked",
            ],
        )

    # ------------------------------------------------------------------
    # Finding analysis
    # ------------------------------------------------------------------

    def _affected_tables(self, findings: Sequence[Finding]) -> Set[str]:
        tables = set()
        for finding in findings:
            name = finding.context.get("table")
            if name:
                tables.add(self._base_table_name(name))
        return tables

    def _affected_transactions(self, findings: Sequence[Finding]) -> Set[int]:
        return {
            finding.context["transaction_id"]
            for finding in findings
            if "transaction_id" in finding.context
        }

    @staticmethod
    def _base_table_name(name: str) -> str:
        from repro.core.ledger_database import HISTORY_SUFFIX

        if name.endswith(HISTORY_SUFFIX):
            return name[: -len(HISTORY_SUFFIX)]
        return name

    def _commit_time_of(self, transaction_id: Optional[int]):
        if transaction_id is None:
            return None
        entry = self._db.ledger.transaction_entry(transaction_id)
        return entry.commit_time if entry else None

"""Ledger truncation: bounded retention of historical ledger data (§5.2).

Truncation removes old blocks, transaction entries and fully retired history
rows while preserving the verifiability of everything that remains:

1. the ledger is verified first — truncation refuses to discard evidence of
   an inconsistent state;
2. every *live* ledger-table row whose digest lives in a to-be-truncated
   transaction is re-anchored: its version is re-stamped under a fresh
   transaction whose Merkle roots cover it, so its protection moves into a
   new block (the paper's "dummy update");
3. history rows whose delete event falls inside the truncated range are
   physically removed (nothing references them afterwards);
4. the old transaction entries and blocks are deleted, and the hash of the
   last truncated block becomes the chain *anchor* the next block links to;
5. a truncation record is appended to the ``__ledger_truncations``
   append-only ledger table so the operation itself is audited.

History rows created before the cutoff but deleted after it are retained:
their bytes stay protected by the deleting transaction's root, and
verification skips their (now unverifiable) creation events via the recorded
cutoff transaction id.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core import system_columns as sc
from repro.errors import TruncationError
from repro.runtime import DEFAULT_CONTEXT


def truncate_ledger(db, through_block: int, note: Optional[str] = None) -> dict:
    """Truncate all ledger data up to and including ``through_block``.

    Returns a summary dict with the numbers of blocks, transaction entries
    and history rows removed and live rows re-anchored.  Holds the storage
    lock throughout, so concurrent commits observe truncation atomically.
    """
    with db.ledger.storage_lock:
        return _truncate_locked(db, through_block, note)


def _truncate_locked(db, through_block: int, note: Optional[str]) -> dict:
    ledger = db.ledger
    # Barrier, not a synchronous close: waits for in-flight commits and
    # lets the block builder finish sealed blocks; empty open blocks are
    # simply not emitted.
    db.pipeline.drain(seal_open=True)
    target = ledger.block(through_block)
    if target is None:
        raise TruncationError(
            f"block {through_block} does not exist or is still open"
        )
    latest = ledger.latest_block()
    assert latest is not None
    if through_block >= latest.block_id:
        raise TruncationError(
            "cannot truncate the latest block; at least one block must remain"
        )

    digest = db.generate_digest()
    report = db.verify([digest])
    if not report.ok:
        raise TruncationError(
            "ledger verification failed; refusing to truncate an "
            f"inconsistent ledger: {report.summary()}"
        )

    truncated_tids: Set[int] = set()
    for block_id in range(ledger.first_block_id(), through_block + 1):
        for entry in ledger.transactions_in_block(block_id):
            truncated_tids.add(entry.transaction_id)
    if not truncated_tids:
        raise TruncationError("no transactions fall inside the truncation range")
    cutoff_tid = max(truncated_tids)
    anchor_hash = target.block_hash()

    reanchored = _reanchor_live_rows(db, truncated_tids)
    history_removed = _purge_history(db, cutoff_tid)
    entries_removed, blocks_removed = _drop_chain_prefix(
        db, through_block, truncated_tids
    )

    ledger.set_anchor(through_block, anchor_hash)
    _record_truncation(db, through_block, cutoff_tid, anchor_hash, note)

    summary = {
        "truncated_through_block": through_block,
        "truncated_through_tid": cutoff_tid,
        "blocks_removed": blocks_removed,
        "entries_removed": entries_removed,
        "history_rows_removed": history_removed,
        "live_rows_reanchored": reanchored,
    }
    ctx = getattr(db, "context", None) or DEFAULT_CONTEXT
    ctx.events.emit("truncation", "truncation.completed", **summary)
    return summary


def _reanchor_live_rows(db, truncated_tids: Set[int]) -> int:
    """Re-stamp live rows referencing truncated transactions (§5.2).

    The paper performs a "dummy update"; here the re-anchoring is explicit:
    each affected row version is re-issued under a fresh transaction — same
    values, new start transaction/sequence — and hashed into that
    transaction's Merkle tree.  No history row is produced: the old version's
    only record was its creating transaction, which is being truncated.
    """
    reanchored = 0
    for table in db.ledger_tables():
        start_tid, start_seq = sc.start_ordinals(table.schema)
        targets = [
            rid
            for rid, row in table.scan()
            if row[start_tid] in truncated_tids
        ]
        if not targets:
            continue
        txn = db.begin(username="ledger_truncation")
        hooks = db.hooks
        for rid in targets:
            from repro.engine.record import decode_record

            row = decode_record(table.schema, table.heap.read(rid))
            fresh = list(row)
            # Run the ledger insert hook to stamp + hash the new version,
            # then overwrite the stored record without creating history.
            stamped = hooks.before_insert(txn, table, fresh)
            with hooks.system_operation():
                table.update_row(txn, rid, list(stamped))
            reanchored += 1
        db.commit(txn)
    return reanchored


def _purge_history(db, cutoff_tid: int) -> int:
    """Physically delete history rows fully retired inside the range."""
    removed = 0
    hooks = db.hooks
    for table in db.ledger_tables():
        history_id = table.options.get("history_table_id")
        if history_id is None:
            continue
        history = db.engine.table_by_id(history_id)
        end_tid, _ = sc.end_ordinals(history.schema)
        targets = [
            rid for rid, row in history.scan() if row[end_tid] <= cutoff_tid
        ]
        if not targets:
            continue
        txn = db.begin(username="ledger_truncation")
        with hooks.system_operation():
            for rid in targets:
                history.delete_row(txn, rid)
        db.commit(txn)
        removed += len(targets)
    return removed


def _drop_chain_prefix(db, through_block: int, truncated_tids: Set[int]):
    """Delete truncated transaction entries and block rows."""
    from repro.core.database_ledger import BLOCKS_TABLE, TRANSACTIONS_TABLE

    engine = db.engine
    transactions = engine.table(TRANSACTIONS_TABLE)
    blocks = engine.table(BLOCKS_TABLE)
    tid_ordinal = transactions.schema.column("transaction_id").ordinal
    block_ordinal = blocks.schema.column("block_id").ordinal

    txn = db.begin(username="ledger_truncation")
    entry_rids = [
        rid for rid, row in transactions.scan() if row[tid_ordinal] in truncated_tids
    ]
    for rid in entry_rids:
        transactions.delete_row(txn, rid)
    block_rids = [
        rid for rid, row in blocks.scan() if row[block_ordinal] <= through_block
    ]
    for rid in block_rids:
        blocks.delete_row(txn, rid)
    db.commit(txn)
    return len(entry_rids), len(block_rids)


def _record_truncation(
    db, through_block: int, cutoff_tid: int, anchor_hash: bytes,
    note: Optional[str],
) -> None:
    from repro.core.ledger_database import TRUNCATIONS_TABLE

    table = db.engine.table(TRUNCATIONS_TABLE)
    next_id = 1 + sum(1 for _ in table.scan())
    txn = db.begin(username="ledger_truncation")
    db.insert(
        txn,
        TRUNCATIONS_TABLE,
        [[next_id, through_block, cutoff_tid, anchor_hash, note]],
    )
    db.commit(txn)

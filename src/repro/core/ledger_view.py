"""Ledger views: the per-table audit trail of all row operations (§2.1).

For every ledger table the system exposes a view reporting each row version
event — INSERTs of new versions and DELETEs of old ones — together with the
transaction that performed it and the operation sequence number.  Updates
appear as a DELETE of the old version plus an INSERT of the new one
(Figure 2 of the paper).

Views are *derived*, never stored: each call recomputes from the current
ledger and history tables.  What IS stored (in the ``__ledger_views`` system
table) is the canonical view *definition*, which verification re-derives and
compares so that a tampered definition cannot silently change what auditors
see (§3.4.2, final step).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core import system_columns as sc
from repro.engine.table import Table

OPERATION_INSERT = "INSERT"
OPERATION_DELETE = "DELETE"

#: Names of the audit columns appended by every ledger view.
VIEW_TRANSACTION_COLUMN = "ledger_transaction_id"
VIEW_SEQUENCE_COLUMN = "ledger_sequence_number"
VIEW_OPERATION_COLUMN = "ledger_operation_type_desc"


def _user_columns(table: Table) -> List:
    """Visible plus dropped columns — dropped data stays auditable (§3.5.2)."""
    return [
        c for c in table.schema.columns
        if c.name not in sc.ALL_SYSTEM_COLUMNS and not c.hidden
    ]


def _event(
    columns, row, transaction_id: int, sequence: int, operation: str
) -> Dict[str, Any]:
    event = {c.name: row[c.ordinal] for c in columns}
    event[VIEW_TRANSACTION_COLUMN] = transaction_id
    event[VIEW_SEQUENCE_COLUMN] = sequence
    event[VIEW_OPERATION_COLUMN] = operation
    return event


def ledger_view_rows(
    ledger_table: Table, history_table: Optional[Table]
) -> List[Dict[str, Any]]:
    """Materialize the ledger view: one row per row-version event.

    Rows are ordered by (transaction id, sequence number), i.e. the exact
    order in which operations executed — the order auditors need to replay
    what happened.
    """
    columns = _user_columns(ledger_table)
    start_tid, start_seq = sc.start_ordinals(ledger_table.schema)
    events: List[Dict[str, Any]] = []

    for _, row in ledger_table.scan():
        events.append(
            _event(columns, row, row[start_tid], row[start_seq], OPERATION_INSERT)
        )

    if history_table is not None:
        h_start_tid, h_start_seq = sc.start_ordinals(history_table.schema)
        h_end_tid, h_end_seq = sc.end_ordinals(history_table.schema)
        history_columns = _user_columns(history_table)
        for _, row in history_table.scan():
            events.append(
                _event(
                    history_columns, row,
                    row[h_start_tid], row[h_start_seq], OPERATION_INSERT,
                )
            )
            events.append(
                _event(
                    history_columns, row,
                    row[h_end_tid], row[h_end_seq], OPERATION_DELETE,
                )
            )

    events.sort(
        key=lambda e: (e[VIEW_TRANSACTION_COLUMN] or 0, e[VIEW_SEQUENCE_COLUMN] or 0)
    )
    return events


def canonical_view_definition(
    table_name: str, history_table_name: Optional[str], column_names: List[str]
) -> str:
    """The canonical SQL text of a ledger view.

    Stored when the view is created and re-derived during verification; a
    mismatch means someone redefined the view (§3.4.2).
    """
    select_list = ", ".join(column_names) if column_names else "*"
    live = (
        f"SELECT {select_list}, {sc.START_TRANSACTION} AS {VIEW_TRANSACTION_COLUMN}, "
        f"{sc.START_SEQUENCE} AS {VIEW_SEQUENCE_COLUMN}, "
        f"'{OPERATION_INSERT}' AS {VIEW_OPERATION_COLUMN} FROM {table_name}"
    )
    if history_table_name is None:
        return f"CREATE VIEW {table_name}_ledger AS {live}"
    inserted = (
        f"SELECT {select_list}, {sc.START_TRANSACTION}, {sc.START_SEQUENCE}, "
        f"'{OPERATION_INSERT}' FROM {history_table_name}"
    )
    deleted = (
        f"SELECT {select_list}, {sc.END_TRANSACTION}, {sc.END_SEQUENCE}, "
        f"'{OPERATION_DELETE}' FROM {history_table_name}"
    )
    return (
        f"CREATE VIEW {table_name}_ledger AS {live} UNION ALL {inserted} "
        f"UNION ALL {deleted}"
    )

"""Verification checkpoints: O(delta) incremental cycles (§2.3, §6).

A :class:`VerificationCheckpoint` records where a *passing* verification run
left off: the last closed block it covered (id + recomputed chained hash),
the highest transaction id whose row versions it verified, and — per ledger
table — a streaming Merkle frontier (root, leaf count, and the O(log N)
:class:`repro.crypto.merkle.MerkleHasher` state) over the table's row-version
event stream up to that transaction.

Because ``hashable_payload`` skips NULL values, deleting a live row moves it
to history with an as-created leaf *identical* to the live leaf it replaces
— so each table's event stream, ordered by (transaction id, sequence), is
append-only and the frontier over a transaction-id prefix is stable.  An
incremental cycle recomputes the frontier from current storage and compares
it against the checkpoint; a match proves the already-verified prefix is
byte-for-byte intact, and only transactions above ``max_tid`` need their
per-transaction roots checked against ledger entries.

Trust model: the checkpoint is an *optimization, never a trust root*.  It is
only written after a run with zero error findings; it is integrity-hashed so
accidental or malicious edits are detected on load (falling back to a full
scan); and scheduled deep scans re-verify the full prefix from the trusted
digests regardless of any checkpoint.  A forged checkpoint can therefore
never make verification pass — at worst it delays detection until the
frontier comparison or the next deep scan, both of which recompute every
hash from storage.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.hashing import sha256, to_hex
from repro.crypto.merkle import MerkleState, state_from_dict, state_to_dict

#: Default filename, stored beside the database files.
CHECKPOINT_FILENAME = "verify_checkpoint.json"

_FORMAT_VERSION = 1


@dataclass
class TableFrontier:
    """Streaming Merkle frontier over one table's row-version events."""

    table_id: int
    table_name: str
    frontier_root: bytes
    leaf_count: int
    state: MerkleState

    def to_dict(self) -> dict:
        return {
            "table_id": self.table_id,
            "table_name": self.table_name,
            "frontier_root": self.frontier_root.hex(),
            "leaf_count": self.leaf_count,
            "state": state_to_dict(self.state),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableFrontier":
        return cls(
            table_id=int(data["table_id"]),
            table_name=data["table_name"],
            frontier_root=bytes.fromhex(data["frontier_root"]),
            leaf_count=int(data["leaf_count"]),
            state=state_from_dict(data["state"]),
        )


@dataclass
class VerificationCheckpoint:
    """Persisted state of the last fully-verified prefix."""

    database_guid: str
    #: Last closed block the passing run covered.
    block_id: int
    #: Recomputed (trusted-at-write) chained hash of that block.
    block_hash: bytes
    #: Highest transaction id in blocks <= block_id at write time.
    max_tid: int
    tables: Dict[int, TableFrontier] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def _payload(self) -> dict:
        return {
            "version": _FORMAT_VERSION,
            "database_guid": self.database_guid,
            "block_id": self.block_id,
            "block_hash": self.block_hash.hex(),
            "max_tid": self.max_tid,
            "tables": {
                str(table_id): frontier.to_dict()
                for table_id, frontier in sorted(self.tables.items())
            },
        }

    def to_json(self) -> str:
        payload = self._payload()
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return json.dumps(
            {"checkpoint": payload, "integrity": to_hex(sha256(canonical.encode()))},
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> Optional["VerificationCheckpoint"]:
        """Parse and integrity-check; any corruption yields ``None``.

        The integrity hash detects accidental truncation and casual
        tampering; a checkpoint rejected here simply forces a full scan, so
        corruption can never weaken verification.
        """
        try:
            wrapper = json.loads(text)
            payload = wrapper["checkpoint"]
            canonical = json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            )
            if wrapper["integrity"] != to_hex(sha256(canonical.encode())):
                return None
            if payload.get("version") != _FORMAT_VERSION:
                return None
            checkpoint = cls(
                database_guid=payload["database_guid"],
                block_id=int(payload["block_id"]),
                block_hash=bytes.fromhex(payload["block_hash"]),
                max_tid=int(payload["max_tid"]),
            )
            for key, data in payload["tables"].items():
                checkpoint.tables[int(key)] = TableFrontier.from_dict(data)
            return checkpoint
        except Exception:
            return None

    # ------------------------------------------------------------------
    # File persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Write atomically (tmp file + rename) so readers never see halves."""
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(
            prefix=".verify_checkpoint.", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(self.to_json())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> Optional["VerificationCheckpoint"]:
        """Load from ``path``; missing or corrupt files yield ``None``."""
        try:
            with open(path, "r") as handle:
                text = handle.read()
        except OSError:
            return None
        return cls.from_json(text)


def default_checkpoint_path(db) -> str:
    """Where the monitor persists its checkpoint for this database."""
    return os.path.join(db.engine.path, CHECKPOINT_FILENAME)

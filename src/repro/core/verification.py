"""Ledger verification: the five invariants plus the view check (§3.4).

Verification takes externally stored Database Digests as its trusted input
and recomputes every hash in the system from the *current* — possibly
tampered — state:

1. each digest's hash matches the recomputed hash of its block;
2. every block's recorded previous-block hash matches the recomputed hash
   of its predecessor (the Blockchain invariant);
3. every block's recorded transactions Merkle root matches the root
   recomputed over the block's transaction entries, and no entry references
   a missing block;
4. every transaction entry's per-table Merkle root matches the root
   recomputed over the row versions that transaction touched (live rows and
   history rows, re-serialized from storage and ordered by operation
   sequence number), and no row references an unknown transaction;
5. every nonclustered index's duplicated data is equivalent to its base
   table's data.

Finally, each ledger view's stored definition is compared against the
canonically re-derived definition (§3.4.2).

The reproduction executes the checks as Python scans rather than generated
SQL, but the decomposition mirrors the paper's five verification queries
one-to-one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import system_columns as sc
from repro.core.digest import DatabaseDigest
from repro.core.entries import TransactionEntry
from repro.core.ledger_view import canonical_view_definition
from repro.crypto.hashing import hash_leaf
from repro.crypto.merkle import MerkleTree, merkle_root
from repro.engine.record import decode_record, hashable_payload, key_tuple
from repro.engine.table import Table
from repro.errors import StorageError, VerificationFailedError
from repro.obs import OBS

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_VERIFY_RUNS = OBS.metrics.counter(
    "verify_runs_total", "Ledger verification runs started"
)
_VERIFY_INVARIANT_SECONDS = OBS.metrics.histogram(
    "verify_invariant_seconds",
    "Wall time spent in each verification invariant",
    ("invariant",),
)
_VERIFY_ROWS_SCANNED = OBS.metrics.counter(
    "verify_row_versions_scanned_total",
    "Row versions re-hashed during verification",
)
_VERIFY_BLOCKS_SCANNED = OBS.metrics.counter(
    "verify_blocks_scanned_total", "Blocks examined during verification"
)
_CALLBACK_ERRORS = OBS.metrics.counter(
    "obs_callback_errors_total",
    "Exceptions raised by user-supplied observability callbacks",
    ("kind",),
)

#: Row-scan granularity at which verification reports progress.
PROGRESS_INTERVAL = 1000


@dataclass(frozen=True)
class Finding:
    """One verification finding (a detected inconsistency or caveat)."""

    invariant: str
    severity: str
    message: str
    context: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.invariant}/{self.severity}] {self.message}"


@dataclass(frozen=True)
class VerificationProgress:
    """One progress event emitted during a verification run.

    ``phase`` is the invariant currently executing; ``phase_index`` /
    ``phase_count`` locate it in the overall run.  ``current`` counts units
    of work done inside the phase (blocks or row versions scanned);
    ``total`` is the expected unit count when it is known up front.
    """

    phase: str
    phase_index: int
    phase_count: int
    current: int = 0
    total: Optional[int] = None
    unit: str = ""

    @property
    def fraction(self) -> float:
        """Overall completed fraction (phase granularity), in [0, 1]."""
        if self.phase_count == 0:
            return 1.0
        within = 0.0
        if self.total:
            within = min(self.current / self.total, 1.0)
        return min((self.phase_index + within) / self.phase_count, 1.0)

    def __str__(self) -> str:
        detail = ""
        if self.current or self.total:
            total = f"/{self.total}" if self.total is not None else ""
            detail = f" ({self.current}{total} {self.unit or 'units'})"
        return (
            f"verify [{self.phase_index + 1}/{self.phase_count}] "
            f"{self.phase}{detail} — {self.fraction * 100:.0f}%"
        )


#: Signature of the optional progress callback accepted by ``verify``.
ProgressCallback = Callable[[VerificationProgress], None]


@dataclass
class VerificationReport:
    """Outcome of a verification run."""

    findings: List[Finding] = field(default_factory=list)
    blocks_verified: int = 0
    transactions_verified: int = 0
    tables_verified: int = 0
    row_versions_hashed: int = 0
    uncovered_transactions: int = 0
    #: Wall seconds spent per invariant, in execution order.
    invariant_timings: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was raised."""
        return not any(f.severity == SEVERITY_ERROR for f in self.findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise VerificationFailedError(self.errors)

    def summary(self) -> str:
        status = "PASSED" if self.ok else "FAILED"
        return (
            f"ledger verification {status}: {self.blocks_verified} blocks, "
            f"{self.transactions_verified} transactions, "
            f"{self.tables_verified} tables, "
            f"{self.row_versions_hashed} row versions hashed, "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )

    def timing_summary(self) -> str:
        """Per-invariant wall-time breakdown (the paper's Fig. 9 cost view)."""
        if not self.invariant_timings:
            return "no invariant timings recorded"
        total = sum(self.invariant_timings.values()) or 1e-12
        lines = ["invariant timings:"]
        for name, seconds in self.invariant_timings.items():
            lines.append(
                f"  {name:<12} {seconds * 1000:>9.2f}ms "
                f"({seconds / total * 100:>5.1f}%)"
            )
        return "\n".join(lines)


class LedgerVerifier:
    """Runs the full verification process against one LedgerDatabase."""

    def __init__(
        self,
        db,
        progress: Optional[ProgressCallback] = None,
        progress_interval: int = PROGRESS_INTERVAL,
    ) -> None:
        self._db = db
        self._ledger = db.ledger
        self._progress = progress
        self._progress_interval = max(1, progress_interval)
        self._phase = ""
        self._phase_index = 0
        self._phase_count = 0
        self._phase_current = 0
        self._phase_total: Optional[int] = None
        self._phase_unit = ""

    def verify(
        self,
        digests: Sequence[DatabaseDigest],
        table_names: Optional[Sequence[str]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> VerificationReport:
        """Verify the database against the given digests.

        ``table_names`` restricts invariants 4 and 5 to specific ledger
        tables (the reduced-cost option of §2.3); chain-level invariants
        always run in full.  ``progress`` (or the constructor's callback) is
        invoked with :class:`VerificationProgress` events as invariants start
        and as rows/blocks are scanned, so long verifications can report
        percent-complete.
        """
        if progress is not None:
            self._progress = progress
        report = VerificationReport()
        _VERIFY_RUNS.inc()
        OBS.events.emit("verify", "verify.started", digests=len(digests))
        # Hold the storage lock for the whole run: verification reads many
        # tables and must see one consistent snapshot of the chain.
        with self._ledger.storage_lock, OBS.tracer.span("verify.run"):
            # Drain the pipeline without sealing the open block: sealed
            # blocks close so the chain tip is complete, queued entries
            # become visible relationally, and open-block entries keep
            # verifying as "uncovered transactions".
            self._db.pipeline.drain(seal_open=False)
            self._ledger.flush_queue()
            entries = {e.transaction_id: e for e in self._ledger.all_entries()}
            blocks = {b.block_id: b for b in self._ledger.blocks()}
            cutoff_tid = self._truncation_cutoff_tid()
            tables = self._target_tables(table_names)

            phases: List[Tuple[str, Callable[[], None], Optional[int], str]] = [
                ("digest",
                 lambda: self._check_digests(report, digests, blocks),
                 len(digests), "digests"),
                ("chain",
                 lambda: self._check_chain(report, blocks),
                 len(blocks), "blocks"),
                ("block_root",
                 lambda: self._check_block_roots(report, blocks, entries),
                 len(blocks), "blocks"),
                ("table_root",
                 lambda: self._check_table_roots(
                     report, tables, entries, cutoff_tid),
                 None, "row versions"),
                ("index",
                 lambda: self._check_indexes(report, tables),
                 len(tables), "tables"),
                ("view",
                 lambda: self._check_views(report),
                 None, "views"),
            ]
            self._phase_count = len(phases)
            for index, (name, check, total, unit) in enumerate(phases):
                self._begin_phase(name, index, total, unit)
                started = time.perf_counter()
                with OBS.tracer.span(f"verify.{name}"):
                    check()
                elapsed = time.perf_counter() - started
                self._end_phase()
                report.invariant_timings[name] = elapsed
                _VERIFY_INVARIANT_SECONDS.labels(name).observe(elapsed)
            self._emit_done()
        for finding in report.findings:
            OBS.events.emit(
                "verify", "verify.finding",
                invariant=finding.invariant, severity=finding.severity,
                message=finding.message,
            )
        OBS.events.emit(
            "verify", "verify.passed" if report.ok else "verify.failed",
            blocks=report.blocks_verified,
            transactions=report.transactions_verified,
            errors=len(report.errors), warnings=len(report.warnings),
        )
        return report

    # ------------------------------------------------------------------
    # Progress reporting
    # ------------------------------------------------------------------

    def _begin_phase(
        self, name: str, index: int, total: Optional[int], unit: str
    ) -> None:
        self._phase = name
        self._phase_index = index
        self._phase_current = 0
        self._phase_total = total
        self._phase_unit = unit
        self._emit_progress()

    def _advance(self, units: int = 1, force: bool = False) -> None:
        """Account for ``units`` of scan work inside the current phase."""
        before = self._phase_current
        self._phase_current = before + units
        if self._progress is None:
            return
        if force or (
            before // self._progress_interval
            != self._phase_current // self._progress_interval
        ):
            self._emit_progress()

    def _end_phase(self) -> None:
        """Force a final progress event at 100% for the finished phase.

        Phases whose unit total was unknown up front (row-version scans)
        learn it here — it is whatever was scanned — so the final event
        always reports ``current == total`` even when the unit count is not
        a multiple of ``progress_interval``.
        """
        if self._phase_total is None or self._phase_total < self._phase_current:
            self._phase_total = self._phase_current
        self._phase_current = self._phase_total
        self._emit_progress()

    def _emit_done(self) -> None:
        """Terminal progress event for the whole run (fraction == 1.0)."""
        self._dispatch(
            VerificationProgress(
                phase="done",
                phase_index=self._phase_count,
                phase_count=self._phase_count,
            )
        )

    def _emit_progress(self) -> None:
        self._dispatch(
            VerificationProgress(
                phase=self._phase,
                phase_index=self._phase_index,
                phase_count=self._phase_count,
                current=self._phase_current,
                total=self._phase_total,
                unit=self._phase_unit,
            )
        )

    def _dispatch(self, event: VerificationProgress) -> None:
        """Deliver one progress event, absorbing callback failures.

        A broken user callback must never abort a verification run; failures
        are counted on ``obs_callback_errors_total{kind="progress"}``.
        """
        if self._progress is None:
            return
        try:
            self._progress(event)
        except Exception:
            _CALLBACK_ERRORS.labels("progress").inc()

    # ------------------------------------------------------------------
    # Invariant 1 — digests match recomputed block hashes
    # ------------------------------------------------------------------

    def _check_digests(self, report, digests, blocks) -> None:
        guid = self._db.database_guid
        for digest in digests:
            self._advance()
            if digest.database_guid != guid:
                report.findings.append(
                    Finding(
                        "digest", SEVERITY_ERROR,
                        "digest belongs to a different database",
                        {"digest_guid": digest.database_guid},
                    )
                )
                continue
            if digest.block_id < self._ledger.first_block_id():
                report.findings.append(
                    Finding(
                        "digest", SEVERITY_WARNING,
                        f"digest covers block {digest.block_id}, which has "
                        "been truncated; use a digest issued after truncation",
                        {"block_id": digest.block_id},
                    )
                )
                continue
            block = blocks.get(digest.block_id)
            if block is None:
                report.findings.append(
                    Finding(
                        "digest", SEVERITY_ERROR,
                        f"digest references block {digest.block_id} which is "
                        "not present in the ledger",
                        {"block_id": digest.block_id},
                    )
                )
                continue
            if block.block_hash() != digest.block_hash:
                report.findings.append(
                    Finding(
                        "digest", SEVERITY_ERROR,
                        f"hash of block {digest.block_id} does not match the "
                        "trusted digest",
                        {"block_id": digest.block_id},
                    )
                )

    # ------------------------------------------------------------------
    # Invariant 2 — the blockchain links verify
    # ------------------------------------------------------------------

    def _check_chain(self, report, blocks) -> None:
        if not blocks:
            return
        first_expected = self._ledger.first_block_id()
        block_ids = sorted(blocks)
        expected = list(range(first_expected, block_ids[-1] + 1))
        if block_ids != expected:
            missing = sorted(set(expected) - set(blocks))
            report.findings.append(
                Finding(
                    "chain", SEVERITY_ERROR,
                    f"the blockchain has gaps: missing blocks {missing}",
                    {"missing": missing},
                )
            )
        anchor = self._ledger.anchor
        for block_id in block_ids:
            block = blocks[block_id]
            report.blocks_verified += 1
            _VERIFY_BLOCKS_SCANNED.inc()
            self._advance()
            if block_id == 0:
                if block.previous_block_hash is not None:
                    report.findings.append(
                        Finding(
                            "chain", SEVERITY_ERROR,
                            "block 0 must record a null previous-block hash",
                            {"block_id": 0},
                        )
                    )
                continue
            if anchor is not None and block_id == anchor[0] + 1:
                expected_prev = anchor[1]
            else:
                previous = blocks.get(block_id - 1)
                if previous is None:
                    continue  # gap already reported
                expected_prev = previous.block_hash()
            if block.previous_block_hash != expected_prev:
                report.findings.append(
                    Finding(
                        "chain", SEVERITY_ERROR,
                        f"block {block_id} records a previous-block hash that "
                        f"does not match the recomputed hash of block "
                        f"{block_id - 1}",
                        {"block_id": block_id},
                    )
                )

    # ------------------------------------------------------------------
    # Invariant 3 — block transaction roots
    # ------------------------------------------------------------------

    def _check_block_roots(self, report, blocks, entries) -> None:
        by_block: Dict[int, List[TransactionEntry]] = {}
        for entry in entries.values():
            by_block.setdefault(entry.block_id, []).append(entry)
        open_block = self._ledger.open_block_id
        for block_id, block in sorted(blocks.items()):
            self._advance()
            block_entries = sorted(
                by_block.get(block_id, []), key=lambda e: e.ordinal
            )
            tree = MerkleTree([e.entry_hash() for e in block_entries])
            if tree.root() != block.transactions_root:
                report.findings.append(
                    Finding(
                        "block_root", SEVERITY_ERROR,
                        f"transactions Merkle root of block {block_id} does "
                        "not match the recomputed root over its entries",
                        {"block_id": block_id},
                    )
                )
            if block.transaction_count != len(block_entries):
                report.findings.append(
                    Finding(
                        "block_root", SEVERITY_ERROR,
                        f"block {block_id} records {block.transaction_count} "
                        f"transactions but {len(block_entries)} are present",
                        {"block_id": block_id},
                    )
                )
            report.transactions_verified += len(block_entries)
        for block_id, block_entries in by_block.items():
            if block_id in blocks:
                continue
            if block_id >= open_block and self._ledger.block(block_id) is None:
                # Entries of the still-open block: internally consistent but
                # not yet covered by any digest (§3.4.1).
                report.uncovered_transactions += len(block_entries)
                continue
            report.findings.append(
                Finding(
                    "block_root", SEVERITY_ERROR,
                    f"{len(block_entries)} transaction(s) reference block "
                    f"{block_id} which is not part of the blockchain",
                    {"block_id": block_id},
                )
            )

    # ------------------------------------------------------------------
    # Invariant 4 — per-transaction table Merkle roots
    # ------------------------------------------------------------------

    def _target_tables(self, table_names) -> List[Table]:
        tables = self._db.ledger_tables()
        if table_names is None:
            return tables
        wanted = set(table_names)
        return [t for t in tables if t.name in wanted]

    def _check_table_roots(self, report, tables, entries, cutoff_tid) -> None:
        for table in tables:
            report.tables_verified += 1
            events = self._collect_events(report, table)
            for tid, leaves in sorted(events.items()):
                if tid is None:
                    report.findings.append(
                        Finding(
                            "table_root", SEVERITY_ERROR,
                            f"table {table.name!r} holds row versions with "
                            "missing transaction ids",
                            {"table": table.name},
                        )
                    )
                    continue
                entry = entries.get(tid)
                if entry is None:
                    if cutoff_tid is not None and tid <= cutoff_tid:
                        continue  # the transaction was legally truncated
                    report.findings.append(
                        Finding(
                            "table_root", SEVERITY_ERROR,
                            f"rows in table {table.name!r} reference "
                            f"transaction {tid} which is not recorded in the "
                            "ledger",
                            {"table": table.name, "transaction_id": tid},
                        )
                    )
                    continue
                leaves.sort(key=lambda pair: pair[0])
                computed = merkle_root([leaf for _, leaf in leaves])
                recorded = entry.root_for_table(table.table_id)
                report.row_versions_hashed += len(leaves)
                if recorded is None:
                    report.findings.append(
                        Finding(
                            "table_root", SEVERITY_ERROR,
                            f"transaction {tid} touched table {table.name!r} "
                            "but its ledger entry records no root for it",
                            {"table": table.name, "transaction_id": tid},
                        )
                    )
                elif computed != recorded:
                    report.findings.append(
                        Finding(
                            "table_root", SEVERITY_ERROR,
                            f"Merkle root for transaction {tid} over table "
                            f"{table.name!r} does not match the ledger",
                            {"table": table.name, "transaction_id": tid},
                        )
                    )
            # The reverse direction: entries claiming updates this table
            # cannot substantiate.
            for tid, entry in entries.items():
                if entry.root_for_table(table.table_id) is None:
                    continue
                if tid not in events:
                    report.findings.append(
                        Finding(
                            "table_root", SEVERITY_ERROR,
                            f"transaction {tid} recorded updates to table "
                            f"{table.name!r} but no matching row versions "
                            "exist",
                            {"table": table.name, "transaction_id": tid},
                        )
                    )

    def _collect_events(
        self, report, table: Table
    ) -> Dict[Optional[int], List[Tuple[int, bytes]]]:
        """Rebuild (sequence, leaf hash) events per transaction (§3.4.1-4)."""
        events: Dict[Optional[int], List[Tuple[int, bytes]]] = {}

        def add(tid, seq, leaf) -> None:
            events.setdefault(tid, []).append((seq if seq is not None else -1, leaf))
            _VERIFY_ROWS_SCANNED.inc()
            self._advance()

        start_tid, start_seq = sc.start_ordinals(table.schema)
        for rid, record in table.heap.scan():
            try:
                row = decode_record(table.schema, record)
            except StorageError as exc:
                report.findings.append(
                    Finding(
                        "table_root", SEVERITY_ERROR,
                        f"row {rid} in table {table.name!r} failed to decode: "
                        f"{exc}",
                        {"table": table.name},
                    )
                )
                continue
            leaf = hash_leaf(hashable_payload(table.schema, row))
            add(row[start_tid], row[start_seq], leaf)

        history_id = table.options.get("history_table_id")
        if history_id is not None:
            history = self._db.engine.table_by_id(history_id)
            h_start_tid, h_start_seq = sc.start_ordinals(history.schema)
            h_end_tid, h_end_seq = sc.end_ordinals(history.schema)
            for rid, record in history.heap.scan():
                try:
                    row = decode_record(history.schema, record)
                except StorageError as exc:
                    report.findings.append(
                        Finding(
                            "table_root", SEVERITY_ERROR,
                            f"row {rid} in history table {history.name!r} "
                            f"failed to decode: {exc}",
                            {"table": history.name},
                        )
                    )
                    continue
                # As-created form: the end columns were NULL when the
                # creating transaction hashed this version.
                created = sc.mask_end_columns(history.schema, row)
                add(
                    row[h_start_tid], row[h_start_seq],
                    hash_leaf(hashable_payload(history.schema, created)),
                )
                # As-deleted form: hashed by the deleting transaction.
                add(
                    row[h_end_tid], row[h_end_seq],
                    hash_leaf(hashable_payload(history.schema, row)),
                )
        return events

    # ------------------------------------------------------------------
    # Invariant 5 — nonclustered indexes match their base tables
    # ------------------------------------------------------------------

    def _check_indexes(self, report, tables) -> None:
        for table in tables:
            self._advance()
            candidates = [table]
            history_id = table.options.get("history_table_id")
            if history_id is not None:
                candidates.append(self._db.engine.table_by_id(history_id))
            for target in candidates:
                if not target.nonclustered:
                    continue
                base_root = self._rows_root(report, target, target.heap.scan())
                for index in target.nonclustered.values():
                    index_root = self._rows_root(
                        report, target,
                        ((None, record) for record in index.scan_records()),
                    )
                    if index_root != base_root:
                        report.findings.append(
                            Finding(
                                "index", SEVERITY_ERROR,
                                f"nonclustered index {index.name!r} on "
                                f"{target.name!r} is not equivalent to the "
                                "base table",
                                {"table": target.name, "index": index.name},
                            )
                        )

    def _rows_root(self, report, table: Table, records) -> bytes:
        """Merkle root over decoded records, ordered by clustered key."""
        keyed = []
        key_ordinals = table.schema.primary_key_ordinals()
        for rid, record in records:
            try:
                row = decode_record(table.schema, record)
            except StorageError as exc:
                report.findings.append(
                    Finding(
                        "index", SEVERITY_ERROR,
                        f"record in {table.name!r} failed to decode during "
                        f"index verification: {exc}",
                        {"table": table.name},
                    )
                )
                continue
            if key_ordinals:
                order_key = key_tuple([row[o] for o in key_ordinals])
            else:
                order_key = key_tuple(list(row))
            keyed.append((order_key, hash_leaf(hashable_payload(table.schema, row))))
        keyed.sort(key=lambda pair: pair[0])
        return merkle_root([leaf for _, leaf in keyed])

    # ------------------------------------------------------------------
    # Ledger view definitions (§3.4.2, final step)
    # ------------------------------------------------------------------

    def _check_views(self, report) -> None:
        from repro.core.ledger_database import VIEWS_TABLE

        views = self._db.engine.table(VIEWS_TABLE)
        stored: Dict[str, str] = {}
        name_ord = views.schema.column("view_name").ordinal
        def_ord = views.schema.column("definition").ordinal
        for _, row in views.scan():
            stored[row[name_ord]] = row[def_ord]
        for table in self._db.ledger_tables():
            history_id = table.options.get("history_table_id")
            history = (
                self._db.engine.table_by_id(history_id) if history_id else None
            )
            expected = canonical_view_definition(
                table.name,
                history.name if history else None,
                [c.name for c in table.schema.visible_columns],
            )
            view_name = f"{table.name}_ledger"
            actual = stored.get(view_name)
            if actual is None:
                report.findings.append(
                    Finding(
                        "view", SEVERITY_ERROR,
                        f"ledger view {view_name!r} is not registered",
                        {"view": view_name},
                    )
                )
            elif actual != expected:
                report.findings.append(
                    Finding(
                        "view", SEVERITY_ERROR,
                        f"definition of ledger view {view_name!r} does not "
                        "match the canonical definition",
                        {"view": view_name},
                    )
                )

    # ------------------------------------------------------------------
    # Truncation support
    # ------------------------------------------------------------------

    def _truncation_cutoff_tid(self) -> Optional[int]:
        from repro.core.ledger_database import TRUNCATIONS_TABLE

        try:
            table = self._db.engine.table(TRUNCATIONS_TABLE)
        except Exception:
            return None
        cutoff = None
        ordinal = table.schema.column("truncated_through_tid").ordinal
        for _, row in table.scan():
            value = row[ordinal]
            if cutoff is None or value > cutoff:
                cutoff = value
        return cutoff

"""Ledger verification: the five invariants plus the view check (§3.4).

Verification takes externally stored Database Digests as its trusted input
and recomputes every hash in the system from the *current* — possibly
tampered — state:

1. each digest's hash matches the recomputed hash of its block;
2. every block's recorded previous-block hash matches the recomputed hash
   of its predecessor (the Blockchain invariant);
3. every block's recorded transactions Merkle root matches the root
   recomputed over the block's transaction entries, and no entry references
   a missing block;
4. every transaction entry's per-table Merkle root matches the root
   recomputed over the row versions that transaction touched (live rows and
   history rows, re-serialized from storage and ordered by operation
   sequence number), and no row references an unknown transaction;
5. every nonclustered index's duplicated data is equivalent to its base
   table's data.

Finally, each ledger view's stored definition is compared against the
canonically re-derived definition (§3.4.2).

The reproduction executes the checks as Python scans rather than generated
SQL, but the decomposition mirrors the paper's five verification queries
one-to-one.

Execution model (§2.3, §6 — verification must not stall the OLTP path):

* **Snapshot-then-verify.**  The storage lock is held only while
  :func:`repro.core.verify_snapshot.capture_snapshot` materializes immutable
  references to blocks, entries, and stored records; every hash is then
  recomputed off-lock, so commits proceed concurrently with verification.
* **Parallel invariants** (``parallelism=N``).  The scan-heavy phases fan
  out over a fork-based worker pool (:mod:`repro.core.verify_parallel`):
  block roots per chunk, table/index scans per record range, and the chain
  segmented into ranges stitched at boundary hashes.
* **Incremental mode** (``mode="incremental"`` + a
  :class:`repro.core.verify_checkpoint.VerificationCheckpoint`).  Digest,
  chain, and block-root invariants still run in full (they are cheap —
  O(blocks + entries) small-buffer hashes); the expensive row-version
  invariant recomputes each table's Merkle *frontier* over the already-
  verified transaction prefix and compares it to the checkpoint, then
  checks per-transaction roots only for new transactions.  The index
  invariant is deferred to scheduled deep scans.  Any frontier mismatch
  escalates to a full scan within the same call — the checkpoint is an
  optimization, never a trust root.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.digest import DatabaseDigest
from repro.core.verify_checkpoint import TableFrontier, VerificationCheckpoint
from repro.core.verify_parallel import (
    VerifyPool,
    block_root_task,
    chain_segment_task,
    events_task,
    keyed_leaves_task,
    split_ranges,
)
from repro.core.verify_snapshot import (
    RelationSnapshot,
    TableSnapshot,
    VerificationSnapshot,
    cached_record_events,
    capture_snapshot,
)
from repro.crypto.hashing import LeafHashCache
from repro.crypto.merkle import MerkleHasher, MerkleTree, merkle_root
from repro.errors import StorageError, VerificationFailedError
from repro.runtime import DEFAULT_CONTEXT

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


def _verify_metrics(reg):
    class _Families:
        runs = reg.counter(
            "verify_runs_total", "Ledger verification runs started"
        )
        mode_runs = reg.counter(
            "verify_mode_runs_total",
            "Ledger verification runs by executed mode",
            ("mode",),
        )
        invariant_seconds = reg.histogram(
            "verify_invariant_seconds",
            "Wall time spent in each verification invariant",
            ("invariant",),
        )
        rows_scanned = reg.counter(
            "verify_row_versions_scanned_total",
            "Row versions re-hashed during verification",
        )
        blocks_scanned = reg.counter(
            "verify_blocks_scanned_total",
            "Blocks examined during verification",
        )
        parallel_tasks = reg.counter(
            "verify_parallel_tasks_total",
            "Verification work units dispatched to the worker pool, by phase",
            ("phase",),
        )
        cache_lookups = reg.counter(
            "verify_leaf_cache_lookups_total",
            "Leaf-hash cache lookups during verification, by result",
            ("result",),
        )
        escalations = reg.counter(
            "verify_incremental_escalations_total",
            "Incremental runs escalated to a full scan by a frontier mismatch",
        )
        fallbacks = reg.counter(
            "verify_checkpoint_fallbacks_total",
            "Incremental runs that fell back to a full scan "
            "(unusable checkpoint)",
        )
        callback_errors = reg.counter(
            "obs_callback_errors_total",
            "Exceptions raised by user-supplied observability callbacks",
            ("kind",),
        )

    return _Families

#: Row-scan granularity at which verification reports progress.
PROGRESS_INTERVAL = 1000

#: Process-wide leaf-hash cache shared by all verifiers (monitor + ad hoc).
_GLOBAL_LEAF_CACHE = LeafHashCache()


def leaf_cache() -> LeafHashCache:
    """The process-wide leaf-hash cache used by default."""
    return _GLOBAL_LEAF_CACHE


@dataclass(frozen=True)
class Finding:
    """One verification finding (a detected inconsistency or caveat)."""

    invariant: str
    severity: str
    message: str
    context: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.invariant}/{self.severity}] {self.message}"


@dataclass(frozen=True)
class VerificationProgress:
    """One progress event emitted during a verification run.

    ``phase`` is the invariant currently executing; ``phase_index`` /
    ``phase_count`` locate it in the overall run.  ``current`` counts units
    of work done inside the phase (blocks or row versions scanned);
    ``total`` is the expected unit count when it is known up front.
    """

    phase: str
    phase_index: int
    phase_count: int
    current: int = 0
    total: Optional[int] = None
    unit: str = ""

    @property
    def fraction(self) -> float:
        """Overall completed fraction (phase granularity), in [0, 1]."""
        if self.phase_count == 0:
            return 1.0
        within = 0.0
        if self.total:
            within = min(self.current / self.total, 1.0)
        return min((self.phase_index + within) / self.phase_count, 1.0)

    def __str__(self) -> str:
        detail = ""
        if self.current or self.total:
            total = f"/{self.total}" if self.total is not None else ""
            detail = f" ({self.current}{total} {self.unit or 'units'})"
        return (
            f"verify [{self.phase_index + 1}/{self.phase_count}] "
            f"{self.phase}{detail} — {self.fraction * 100:.0f}%"
        )


#: Signature of the optional progress callback accepted by ``verify``.
ProgressCallback = Callable[[VerificationProgress], None]


@dataclass
class VerificationReport:
    """Outcome of a verification run."""

    findings: List[Finding] = field(default_factory=list)
    blocks_verified: int = 0
    transactions_verified: int = 0
    tables_verified: int = 0
    row_versions_hashed: int = 0
    uncovered_transactions: int = 0
    #: Wall seconds spent per invariant, in execution order.
    invariant_timings: Dict[str, float] = field(default_factory=dict)
    #: Mode that actually executed ("full" or "incremental").
    mode: str = "full"
    #: Worker processes that actually ran (1 = serial).
    parallelism: int = 1
    #: Seconds the storage lock was held capturing the snapshot.
    snapshot_seconds: float = 0.0
    #: Leaf-hash cache traffic attributable to this run.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Invariants deferred to deep scans (incremental mode only).
    skipped_invariants: List[str] = field(default_factory=list)
    #: True when a frontier mismatch escalated incremental -> full.
    escalated: bool = False
    #: Why an incremental request fell back to a full scan, if it did.
    fallback_reason: Optional[str] = None
    #: Checkpoint built by this run (only when requested and passing).
    built_checkpoint: Optional[VerificationCheckpoint] = None

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was raised."""
        return not any(f.severity == SEVERITY_ERROR for f in self.findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise VerificationFailedError(self.errors)

    def summary(self) -> str:
        status = "PASSED" if self.ok else "FAILED"
        extras = []
        if self.mode != "full":
            extras.append(self.mode)
        if self.parallelism > 1:
            extras.append(f"{self.parallelism} workers")
        if self.escalated:
            extras.append("escalated")
        detail = f" [{', '.join(extras)}]" if extras else ""
        return (
            f"ledger verification {status}{detail}: "
            f"{self.blocks_verified} blocks, "
            f"{self.transactions_verified} transactions, "
            f"{self.tables_verified} tables, "
            f"{self.row_versions_hashed} row versions hashed, "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )

    def timing_summary(self) -> str:
        """Per-invariant wall-time breakdown (the paper's Fig. 9 cost view)."""
        if not self.invariant_timings:
            return "no invariant timings recorded"
        total = sum(self.invariant_timings.values()) or 1e-12
        lines = ["invariant timings:"]
        for name, seconds in self.invariant_timings.items():
            lines.append(
                f"  {name:<12} {seconds * 1000:>9.2f}ms "
                f"({seconds / total * 100:>5.1f}%)"
            )
        return "\n".join(lines)


class LedgerVerifier:
    """Runs the full verification process against one LedgerDatabase."""

    def __init__(
        self,
        db,
        progress: Optional[ProgressCallback] = None,
        progress_interval: int = PROGRESS_INTERVAL,
        cache: Optional[LeafHashCache] = None,
    ) -> None:
        self._db = db
        self._ledger = db.ledger
        self._ctx = getattr(db, "context", None) or DEFAULT_CONTEXT
        self._obs = self._ctx.obs
        self._m = self._ctx.metrics.handles("verify", _verify_metrics)
        self._progress = progress
        self._progress_interval = max(1, progress_interval)
        self._cache = _GLOBAL_LEAF_CACHE if cache is None else cache
        self._phase = ""
        self._phase_index = 0
        self._phase_count = 0
        self._phase_current = 0
        self._phase_total: Optional[int] = None
        self._phase_unit = ""
        self._escalate_reason: Optional[str] = None
        self._events_by_table: Dict[int, Dict[Optional[int], List[Tuple[int, bytes]]]] = {}

    def verify(
        self,
        digests: Sequence[DatabaseDigest],
        table_names: Optional[Sequence[str]] = None,
        progress: Optional[ProgressCallback] = None,
        parallelism: int = 1,
        mode: str = "full",
        checkpoint: Optional[VerificationCheckpoint] = None,
        build_checkpoint: bool = False,
        snapshot: Optional[VerificationSnapshot] = None,
    ) -> VerificationReport:
        """Verify the database against the given digests.

        ``table_names`` restricts invariants 4 and 5 to specific ledger
        tables (the reduced-cost option of §2.3); chain-level invariants
        always run in full.  ``progress`` (or the constructor's callback) is
        invoked with :class:`VerificationProgress` events as invariants start
        and as rows/blocks are scanned, so long verifications can report
        percent-complete.

        ``parallelism`` fans scan-heavy phases out over N worker processes
        (full mode; serial fallback where fork is unavailable).  ``mode``
        selects full or incremental verification; incremental requires a
        usable ``checkpoint`` and otherwise falls back to full.
        ``build_checkpoint`` asks a passing run to produce the checkpoint
        for the next incremental cycle.  ``snapshot`` reuses an
        already-captured snapshot (internal; used by escalation).
        """
        if mode not in ("full", "incremental"):
            raise ValueError(f"unknown verification mode {mode!r}")
        if progress is not None:
            self._progress = progress
        report = VerificationReport()
        self._m.runs.inc()
        self._ctx.events.emit(
            "verify", "verify.started",
            digests=len(digests), mode=mode, parallelism=parallelism,
        )
        if snapshot is None:
            snapshot = capture_snapshot(self._db, table_names)
        report.snapshot_seconds = snapshot.capture_seconds

        if mode == "incremental":
            checkpoint, fallback_reason = self._usable_checkpoint(
                checkpoint, snapshot
            )
            if checkpoint is None:
                mode = "full"
                report.fallback_reason = fallback_reason
                self._m.fallbacks.inc()
        report.mode = mode
        self._escalate_reason = None
        self._events_by_table = {}
        cache_hits0 = self._cache.hits
        cache_misses0 = self._cache.misses

        pool: Optional[VerifyPool] = None
        if mode == "full" and parallelism > 1:
            pool = VerifyPool(snapshot, parallelism)
        report.parallelism = pool.processes if pool and pool.parallel else 1
        self._m.mode_runs.labels(mode).inc()

        try:
            with self._obs.tracer.span("verify.run"):
                self._run_phases(
                    report, digests, snapshot, mode, checkpoint, pool,
                    build_checkpoint,
                )
                self._emit_done()
        finally:
            if pool is not None:
                pool.close()

        report.cache_hits = self._cache.hits - cache_hits0
        report.cache_misses = self._cache.misses - cache_misses0
        if self._obs.metrics.enabled:
            if report.cache_hits:
                self._m.cache_lookups.labels("hit").inc(report.cache_hits)
            if report.cache_misses:
                self._m.cache_lookups.labels("miss").inc(report.cache_misses)

        if self._escalate_reason is not None:
            # The incremental frontier did not match the checkpoint.  The
            # full scan is the authority: rerun everything off the same
            # snapshot and report its verdict (the escalation itself is
            # surfaced as a warning so operators can investigate).
            self._m.escalations.inc()
            reason = self._escalate_reason
            self._ctx.events.emit("verify", "verify.escalated", reason=reason)
            full_report = self.verify(
                digests,
                table_names=table_names,
                parallelism=parallelism,
                mode="full",
                build_checkpoint=build_checkpoint,
                snapshot=snapshot,
            )
            full_report.escalated = True
            full_report.findings.insert(
                0,
                Finding(
                    "table_root", SEVERITY_WARNING,
                    "incremental verification escalated to a full scan: "
                    + reason,
                    {"reason": reason},
                ),
            )
            return full_report

        if build_checkpoint and report.ok:
            report.built_checkpoint = self._build_checkpoint(
                snapshot, checkpoint if mode == "incremental" else None
            )

        for finding in report.findings:
            self._ctx.events.emit(
                "verify", "verify.finding",
                invariant=finding.invariant, severity=finding.severity,
                message=finding.message,
            )
        self._ctx.events.emit(
            "verify", "verify.passed" if report.ok else "verify.failed",
            blocks=report.blocks_verified,
            transactions=report.transactions_verified,
            errors=len(report.errors), warnings=len(report.warnings),
            mode=report.mode,
        )
        return report

    def _run_phases(
        self, report, digests, snapshot, mode, checkpoint, pool,
        build_checkpoint,
    ) -> None:
        collect_streams = build_checkpoint or mode == "incremental"
        if mode == "incremental":
            phases: List[Tuple[str, Callable[[], None], Optional[int], str]] = [
                ("digest",
                 lambda: self._check_digests(report, digests, snapshot),
                 len(digests), "digests"),
                ("chain",
                 lambda: self._check_chain_incremental(
                     report, snapshot, checkpoint),
                 len(snapshot.blocks), "blocks"),
                ("block_root",
                 lambda: self._check_block_roots_serial(report, snapshot),
                 len(snapshot.blocks), "blocks"),
                ("table_root",
                 lambda: self._check_table_roots_incremental(
                     report, snapshot, checkpoint),
                 None, "row versions"),
                ("view",
                 lambda: self._check_views(report, snapshot),
                 None, "views"),
            ]
            report.skipped_invariants = ["index"]
        elif pool is not None and pool.parallel:
            phases = [
                ("digest",
                 lambda: self._check_digests(report, digests, snapshot),
                 len(digests), "digests"),
                ("chain",
                 lambda: self._check_chain_parallel(report, snapshot, pool),
                 len(snapshot.blocks), "blocks"),
                ("block_root",
                 lambda: self._check_block_roots_parallel(
                     report, snapshot, pool),
                 len(snapshot.blocks), "blocks"),
                ("table_root",
                 lambda: self._check_table_roots_parallel(
                     report, snapshot, pool, collect_streams),
                 None, "row versions"),
                ("index",
                 lambda: self._check_indexes_parallel(report, snapshot, pool),
                 len(snapshot.tables), "tables"),
                ("view",
                 lambda: self._check_views(report, snapshot),
                 None, "views"),
            ]
        else:
            phases = [
                ("digest",
                 lambda: self._check_digests(report, digests, snapshot),
                 len(digests), "digests"),
                ("chain",
                 lambda: self._check_chain_serial(report, snapshot),
                 len(snapshot.blocks), "blocks"),
                ("block_root",
                 lambda: self._check_block_roots_serial(report, snapshot),
                 len(snapshot.blocks), "blocks"),
                ("table_root",
                 lambda: self._check_table_roots_serial(
                     report, snapshot, collect_streams),
                 None, "row versions"),
                ("index",
                 lambda: self._check_indexes_serial(report, snapshot),
                 len(snapshot.tables), "tables"),
                ("view",
                 lambda: self._check_views(report, snapshot),
                 None, "views"),
            ]
        self._phase_count = len(phases)
        for index, (name, check, total, unit) in enumerate(phases):
            self._begin_phase(name, index, total, unit)
            started = time.perf_counter()
            with self._obs.tracer.span(f"verify.{name}"):
                check()
            elapsed = time.perf_counter() - started
            self._end_phase()
            report.invariant_timings[name] = elapsed
            self._m.invariant_seconds.labels(name).observe(elapsed)
            if self._escalate_reason is not None:
                break  # the full rescan re-runs everything anyway

    # ------------------------------------------------------------------
    # Progress reporting
    # ------------------------------------------------------------------

    def _begin_phase(
        self, name: str, index: int, total: Optional[int], unit: str
    ) -> None:
        self._phase = name
        self._phase_index = index
        self._phase_current = 0
        self._phase_total = total
        self._phase_unit = unit
        self._emit_progress()

    def _advance(self, units: int = 1, force: bool = False) -> None:
        """Account for ``units`` of scan work inside the current phase."""
        before = self._phase_current
        self._phase_current = before + units
        if self._progress is None:
            return
        if force or (
            before // self._progress_interval
            != self._phase_current // self._progress_interval
        ):
            self._emit_progress()

    def _end_phase(self) -> None:
        """Force a final progress event at 100% for the finished phase.

        Phases whose unit total was unknown up front (row-version scans)
        learn it here — it is whatever was scanned — so the final event
        always reports ``current == total`` even when the unit count is not
        a multiple of ``progress_interval``.
        """
        if self._phase_total is None or self._phase_total < self._phase_current:
            self._phase_total = self._phase_current
        self._phase_current = self._phase_total
        self._emit_progress()

    def _emit_done(self) -> None:
        """Terminal progress event for the whole run (fraction == 1.0)."""
        self._dispatch(
            VerificationProgress(
                phase="done",
                phase_index=self._phase_count,
                phase_count=self._phase_count,
            )
        )

    def _emit_progress(self) -> None:
        self._dispatch(
            VerificationProgress(
                phase=self._phase,
                phase_index=self._phase_index,
                phase_count=self._phase_count,
                current=self._phase_current,
                total=self._phase_total,
                unit=self._phase_unit,
            )
        )

    def _dispatch(self, event: VerificationProgress) -> None:
        """Deliver one progress event, absorbing callback failures.

        A broken user callback must never abort a verification run; failures
        are counted on ``obs_callback_errors_total{kind="progress"}``.
        """
        if self._progress is None:
            return
        try:
            self._progress(event)
        except Exception:
            self._m.callback_errors.labels("progress").inc()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _wrap_findings(report, findings: List[Dict[str, Any]]) -> None:
        for data in findings:
            report.findings.append(
                Finding(
                    data["invariant"], data["severity"], data["message"],
                    data.get("context", {}),
                )
            )

    # ------------------------------------------------------------------
    # Invariant 1 — digests match recomputed block hashes
    # ------------------------------------------------------------------

    def _check_digests(self, report, digests, snapshot) -> None:
        guid = snapshot.database_guid
        blocks = snapshot.blocks
        for digest in digests:
            self._advance()
            if digest.database_guid != guid:
                report.findings.append(
                    Finding(
                        "digest", SEVERITY_ERROR,
                        "digest belongs to a different database",
                        {"digest_guid": digest.database_guid},
                    )
                )
                continue
            if digest.block_id < snapshot.first_block_id:
                report.findings.append(
                    Finding(
                        "digest", SEVERITY_WARNING,
                        f"digest covers block {digest.block_id}, which has "
                        "been truncated; use a digest issued after truncation",
                        {"block_id": digest.block_id},
                    )
                )
                continue
            block = blocks.get(digest.block_id)
            if block is None:
                report.findings.append(
                    Finding(
                        "digest", SEVERITY_ERROR,
                        f"digest references block {digest.block_id} which is "
                        "not present in the ledger",
                        {"block_id": digest.block_id},
                    )
                )
                continue
            if block.block_hash() != digest.block_hash:
                report.findings.append(
                    Finding(
                        "digest", SEVERITY_ERROR,
                        f"hash of block {digest.block_id} does not match the "
                        "trusted digest",
                        {"block_id": digest.block_id},
                    )
                )

    # ------------------------------------------------------------------
    # Invariant 2 — the blockchain links verify
    # ------------------------------------------------------------------

    def _report_chain_gaps(self, report, snapshot) -> List[int]:
        blocks = snapshot.blocks
        block_ids = sorted(blocks)
        expected = list(range(snapshot.first_block_id, block_ids[-1] + 1))
        if block_ids != expected:
            missing = sorted(set(expected) - set(blocks))
            report.findings.append(
                Finding(
                    "chain", SEVERITY_ERROR,
                    f"the blockchain has gaps: missing blocks {missing}",
                    {"missing": missing},
                )
            )
        return block_ids

    def _check_chain_serial(self, report, snapshot) -> None:
        blocks = snapshot.blocks
        if not blocks:
            return
        block_ids = self._report_chain_gaps(report, snapshot)
        anchor = snapshot.anchor
        for block_id in block_ids:
            block = blocks[block_id]
            report.blocks_verified += 1
            self._m.blocks_scanned.inc()
            self._advance()
            if block_id == 0:
                if block.previous_block_hash is not None:
                    report.findings.append(
                        Finding(
                            "chain", SEVERITY_ERROR,
                            "block 0 must record a null previous-block hash",
                            {"block_id": 0},
                        )
                    )
                continue
            if anchor is not None and block_id == anchor[0] + 1:
                expected_prev = anchor[1]
            else:
                previous = blocks.get(block_id - 1)
                if previous is None:
                    continue  # gap already reported
                expected_prev = previous.block_hash()
            if block.previous_block_hash != expected_prev:
                report.findings.append(
                    Finding(
                        "chain", SEVERITY_ERROR,
                        f"block {block_id} records a previous-block hash that "
                        f"does not match the recomputed hash of block "
                        f"{block_id - 1}",
                        {"block_id": block_id},
                    )
                )

    def _check_chain_parallel(self, report, snapshot, pool) -> None:
        """Segmented chain check: workers hash ranges, boundaries stitch.

        Each worker recomputes the hashes *inside* its contiguous segment
        and reports the segment's first stored previous-hash and last
        recomputed hash; the parent compares those at segment boundaries,
        so every block is hashed exactly once across the pool.
        """
        blocks = snapshot.blocks
        if not blocks:
            return
        block_ids = self._report_chain_gaps(report, snapshot)
        anchor = snapshot.anchor

        # Contiguous runs (gaps split runs; gap findings already reported).
        runs: List[List[int]] = []
        for block_id in block_ids:
            if runs and block_id == runs[-1][-1] + 1:
                runs[-1].append(block_id)
            else:
                runs.append([block_id])

        segments: List[List[int]] = []
        for run in runs:
            for start, end in split_ranges(len(run), pool.processes):
                segments.append(run[start:end])
        if self._obs.metrics.enabled:
            self._m.parallel_tasks.labels("chain").inc(len(segments))

        def on_result(result) -> None:
            report.blocks_verified += result["count"]
            self._m.blocks_scanned.inc(result["count"])
            self._advance(result["count"])

        results = pool.run(chain_segment_task, segments, on_result)

        previous: Optional[Dict[str, Any]] = None
        for result in results:
            self._wrap_findings(report, result["findings"])
            first_id = result["first_id"]
            stored_prev = result["stored_prev"]
            if previous is not None and first_id == previous["last_id"] + 1:
                expected_prev: Optional[bytes] = previous["last_hash"]
            elif first_id == 0:
                if stored_prev is not None:
                    report.findings.append(
                        Finding(
                            "chain", SEVERITY_ERROR,
                            "block 0 must record a null previous-block hash",
                            {"block_id": 0},
                        )
                    )
                previous = result
                continue
            elif anchor is not None and first_id == anchor[0] + 1:
                expected_prev = anchor[1]
            else:
                previous = result
                continue  # run starts at a gap, already reported
            if stored_prev != expected_prev:
                report.findings.append(
                    Finding(
                        "chain", SEVERITY_ERROR,
                        f"block {first_id} records a previous-block hash "
                        f"that does not match the recomputed hash of block "
                        f"{first_id - 1}",
                        {"block_id": first_id},
                    )
                )
            previous = result

    def _check_chain_incremental(self, report, snapshot, checkpoint) -> None:
        """Full chain check plus the checkpoint chained-hash cross-check.

        Chain hashing is cheap (one small SHA-256 per block), so incremental
        cycles still recompute every link — tampering *before* the
        checkpoint is caught immediately, not deferred to a deep scan.  The
        checkpoint's recorded block hash is additionally compared against
        the recomputed hash of that block, anchoring this cycle to the last
        passing run.
        """
        self._check_chain_serial(report, snapshot)
        if checkpoint is None:
            return
        block = snapshot.blocks.get(checkpoint.block_id)
        if block is not None and block.block_hash() != checkpoint.block_hash:
            report.findings.append(
                Finding(
                    "chain", SEVERITY_ERROR,
                    f"recomputed hash of block {checkpoint.block_id} does "
                    "not match the chained hash recorded by the last "
                    "passing verification",
                    {"block_id": checkpoint.block_id},
                )
            )

    # ------------------------------------------------------------------
    # Invariant 3 — block transaction roots
    # ------------------------------------------------------------------

    def _report_unchained_entries(self, report, snapshot) -> None:
        """Entries referencing blocks outside the chain (shared by modes)."""
        for block_id, block_entries in snapshot.entries_by_block.items():
            if block_id in snapshot.blocks:
                continue
            if block_id >= snapshot.open_block_id:
                # Entries of the still-open block: internally consistent but
                # not yet covered by any digest (§3.4.1).
                report.uncovered_transactions += len(block_entries)
                continue
            report.findings.append(
                Finding(
                    "block_root", SEVERITY_ERROR,
                    f"{len(block_entries)} transaction(s) reference block "
                    f"{block_id} which is not part of the blockchain",
                    {"block_id": block_id},
                )
            )

    def _check_block_roots_serial(self, report, snapshot) -> None:
        by_block = snapshot.entries_by_block
        for block_id, block in sorted(snapshot.blocks.items()):
            self._advance()
            block_entries = by_block.get(block_id, [])
            tree = MerkleTree([e.entry_hash() for e in block_entries])
            if tree.root() != block.transactions_root:
                report.findings.append(
                    Finding(
                        "block_root", SEVERITY_ERROR,
                        f"transactions Merkle root of block {block_id} does "
                        "not match the recomputed root over its entries",
                        {"block_id": block_id},
                    )
                )
            if block.transaction_count != len(block_entries):
                report.findings.append(
                    Finding(
                        "block_root", SEVERITY_ERROR,
                        f"block {block_id} records {block.transaction_count} "
                        f"transactions but {len(block_entries)} are present",
                        {"block_id": block_id},
                    )
                )
            report.transactions_verified += len(block_entries)
        self._report_unchained_entries(report, snapshot)

    def _check_block_roots_parallel(self, report, snapshot, pool) -> None:
        block_ids = sorted(snapshot.blocks)
        chunks = [
            block_ids[start:end]
            for start, end in split_ranges(len(block_ids), pool.processes)
        ]
        if self._obs.metrics.enabled:
            self._m.parallel_tasks.labels("block_root").inc(len(chunks))

        results = []
        for chunk, result in zip(chunks, pool.run(block_root_task, chunks)):
            report.transactions_verified += result["transactions"]
            self._advance(len(chunk))
            results.append(result)
        for result in results:
            self._wrap_findings(report, result["findings"])
        self._report_unchained_entries(report, snapshot)

    # ------------------------------------------------------------------
    # Invariant 4 — per-transaction table Merkle roots
    # ------------------------------------------------------------------

    def _collect_events_serial(
        self, report, table: TableSnapshot
    ) -> Dict[Optional[int], List[Tuple[int, bytes]]]:
        """Rebuild (sequence, leaf hash) events per transaction (§3.4.1-4).

        Serial path: cache-assisted, advancing progress per row version so
        long scans report fine-grained percent-complete.
        """
        events: Dict[Optional[int], List[Tuple[int, bytes]]] = {}
        scanned = 0
        for relation in table.relations():
            kind = "history table" if relation.is_history else "table"
            for rid, record in relation.records:
                try:
                    derived, _ = cached_record_events(
                        relation, record, self._cache
                    )
                except StorageError as exc:
                    report.findings.append(
                        Finding(
                            "table_root", SEVERITY_ERROR,
                            f"row {rid} in {kind} {relation.name!r} failed "
                            f"to decode: {exc}",
                            {"table": relation.name},
                        )
                    )
                    continue
                for tid, seq, leaf in derived:
                    events.setdefault(tid, []).append((seq, leaf))
                    scanned += 1
                    self._advance()
        self._m.rows_scanned.inc(scanned)
        return events

    def _check_events_against_entries(
        self, report, snapshot, table: TableSnapshot, events,
        new_tids_only_above: Optional[int] = None,
    ) -> None:
        """Compare per-transaction event roots against ledger entries.

        ``new_tids_only_above`` limits the comparison (and the reverse
        direction) to transactions above the given id — the incremental
        path, where older transactions are covered by the frontier check.
        """
        entries = snapshot.entries
        cutoff_tid = snapshot.cutoff_tid
        floor = new_tids_only_above
        for tid, leaves in sorted(
            events.items(), key=lambda item: (item[0] is None, item[0] or 0)
        ):
            if tid is None:
                report.findings.append(
                    Finding(
                        "table_root", SEVERITY_ERROR,
                        f"table {table.name!r} holds row versions with "
                        "missing transaction ids",
                        {"table": table.name},
                    )
                )
                continue
            if floor is not None and tid <= floor:
                continue
            entry = entries.get(tid)
            if entry is None:
                if cutoff_tid is not None and tid <= cutoff_tid:
                    continue  # the transaction was legally truncated
                report.findings.append(
                    Finding(
                        "table_root", SEVERITY_ERROR,
                        f"rows in table {table.name!r} reference "
                        f"transaction {tid} which is not recorded in the "
                        "ledger",
                        {"table": table.name, "transaction_id": tid},
                    )
                )
                continue
            leaves = sorted(leaves, key=lambda pair: pair[0])
            computed = merkle_root([leaf for _, leaf in leaves])
            recorded = entry.root_for_table(table.table_id)
            report.row_versions_hashed += len(leaves)
            if recorded is None:
                report.findings.append(
                    Finding(
                        "table_root", SEVERITY_ERROR,
                        f"transaction {tid} touched table {table.name!r} "
                        "but its ledger entry records no root for it",
                        {"table": table.name, "transaction_id": tid},
                    )
                )
            elif computed != recorded:
                report.findings.append(
                    Finding(
                        "table_root", SEVERITY_ERROR,
                        f"Merkle root for transaction {tid} over table "
                        f"{table.name!r} does not match the ledger",
                        {"table": table.name, "transaction_id": tid},
                    )
                )
        # The reverse direction: entries claiming updates this table
        # cannot substantiate.
        for tid, entry in entries.items():
            if entry.root_for_table(table.table_id) is None:
                continue
            if floor is not None and tid <= floor:
                continue
            if tid not in events:
                report.findings.append(
                    Finding(
                        "table_root", SEVERITY_ERROR,
                        f"transaction {tid} recorded updates to table "
                        f"{table.name!r} but no matching row versions "
                        "exist",
                        {"table": table.name, "transaction_id": tid},
                    )
                )

    def _check_table_roots_serial(
        self, report, snapshot, collect_streams: bool
    ) -> None:
        for table in snapshot.tables:
            report.tables_verified += 1
            events = self._collect_events_serial(report, table)
            if collect_streams:
                self._events_by_table[table.table_id] = events
            self._check_events_against_entries(report, snapshot, table, events)

    def _check_table_roots_parallel(
        self, report, snapshot, pool, collect_streams: bool
    ) -> None:
        """Fan the row-version scans out as record-range tasks.

        Every (relation, record-range) chunk is an independent task, so a
        single large table still saturates the pool.  Workers do the
        expensive decode + serialize + hash; the parent merges the partial
        per-transaction event maps (order-preserving: tasks arrive in
        submission order) and runs the cheap root comparisons.
        """
        args_list: List[Tuple[int, str, int, int]] = []
        for table_index, table in enumerate(snapshot.tables):
            for which, relation in (
                ("base", table.base), ("history", table.history)
            ):
                if relation is None:
                    continue
                for start, end in split_ranges(
                    len(relation.records), pool.processes
                ):
                    args_list.append((table_index, which, start, end))
        if self._obs.metrics.enabled:
            self._m.parallel_tasks.labels("table_root").inc(len(args_list))

        merged: Dict[int, Dict[Optional[int], List[Tuple[int, bytes]]]] = {}

        def on_result(result) -> None:
            self._m.rows_scanned.inc(result["scanned"])
            self._advance(result["scanned"])

        results = pool.run(events_task, args_list, on_result)
        for args, result in zip(args_list, results):
            table_index = args[0]
            events = merged.setdefault(table_index, {})
            for tid, pairs in result["events"].items():
                events.setdefault(tid, []).extend(pairs)
            self._wrap_findings(report, result["findings"])

        for table_index, table in enumerate(snapshot.tables):
            report.tables_verified += 1
            events = merged.get(table_index, {})
            if collect_streams:
                self._events_by_table[table.table_id] = events
            self._check_events_against_entries(report, snapshot, table, events)

    def _check_table_roots_incremental(
        self, report, snapshot, checkpoint
    ) -> None:
        """Root checks for the delta; leaf counting for the verified prefix.

        The scan still visits every record — that is how new transactions
        are discovered — but events at or below the checkpoint's
        ``max_tid`` are only *counted* against the stored frontier, not
        re-hashed.  An added or deleted pre-checkpoint row version changes
        the count and escalates to a full scan immediately; a same-count
        byte rewrite of old data is caught by the next deep scan, whose
        full rebuild ignores the checkpoint entirely.  The deep-scan
        cadence, not the checkpoint, is the trust boundary: the checkpoint
        only bounds how much work a clean cycle repeats.
        """
        for table in snapshot.tables:
            report.tables_verified += 1
            events = self._collect_events_serial(report, table)
            self._events_by_table[table.table_id] = events
            frontier = checkpoint.tables.get(table.table_id)
            if frontier is None:
                # Table unknown to the checkpoint (created since, or the
                # checkpoint was built with a table filter): check in full.
                self._check_events_against_entries(
                    report, snapshot, table, events
                )
                continue
            old_leaves = 0
            for tid, pairs in events.items():
                if tid is None or tid > checkpoint.max_tid:
                    continue
                old_leaves += len(pairs)
            if old_leaves != frontier.leaf_count:
                self._escalate_reason = (
                    f"table {table.name!r} has {old_leaves} row versions "
                    f"at or below checkpoint transaction "
                    f"{checkpoint.max_tid}, but the checkpoint frontier "
                    f"recorded {frontier.leaf_count}"
                )
                return
            self._check_events_against_entries(
                report, snapshot, table, events,
                new_tids_only_above=checkpoint.max_tid,
            )

    # ------------------------------------------------------------------
    # Invariant 5 — nonclustered indexes match their base tables
    # ------------------------------------------------------------------

    def _keyed_leaves_serial(
        self, report, relation: RelationSnapshot, records
    ) -> List[Tuple[Tuple, bytes]]:
        keyed: List[Tuple[Tuple, bytes]] = []
        for record in records:
            try:
                derived, order_key = cached_record_events(
                    relation, record, self._cache
                )
            except StorageError as exc:
                report.findings.append(
                    Finding(
                        "index", SEVERITY_ERROR,
                        f"record in {relation.name!r} failed to decode "
                        f"during index verification: {exc}",
                        {"table": relation.name},
                    )
                )
                continue
            keyed.append((order_key, derived[-1][2]))
        return keyed

    @staticmethod
    def _root_of_keyed(keyed: List[Tuple[Tuple, bytes]]) -> bytes:
        keyed = sorted(keyed, key=lambda pair: pair[0])
        return merkle_root([leaf for _, leaf in keyed])

    def _check_indexes_serial(self, report, snapshot) -> None:
        for table in snapshot.tables:
            self._advance()
            for relation in table.relations():
                if not relation.index_records:
                    continue
                base_root = self._root_of_keyed(
                    self._keyed_leaves_serial(
                        report, relation,
                        (record for _, record in relation.records),
                    )
                )
                for index_name, records in relation.index_records.items():
                    index_root = self._root_of_keyed(
                        self._keyed_leaves_serial(report, relation, records)
                    )
                    if index_root != base_root:
                        report.findings.append(
                            Finding(
                                "index", SEVERITY_ERROR,
                                f"nonclustered index {index_name!r} on "
                                f"{relation.name!r} is not equivalent to "
                                "the base table",
                                {
                                    "table": relation.name,
                                    "index": index_name,
                                },
                            )
                        )

    def _check_indexes_parallel(self, report, snapshot, pool) -> None:
        args_list: List[Tuple[int, str, Optional[str], int, int]] = []
        for table_index, table in enumerate(snapshot.tables):
            for which, relation in (
                ("base", table.base), ("history", table.history)
            ):
                if relation is None or not relation.index_records:
                    continue
                for start, end in split_ranges(
                    len(relation.records), pool.processes
                ):
                    args_list.append((table_index, which, None, start, end))
                for index_name, records in relation.index_records.items():
                    for start, end in split_ranges(
                        len(records), pool.processes
                    ):
                        args_list.append(
                            (table_index, which, index_name, start, end)
                        )
        if self._obs.metrics.enabled:
            self._m.parallel_tasks.labels("index").inc(len(args_list))

        merged: Dict[Tuple[int, str, Optional[str]], List] = {}
        results = pool.run(keyed_leaves_task, args_list)
        for args, result in zip(args_list, results):
            merged.setdefault(args[:3], []).extend(result["keyed"])
            self._wrap_findings(report, result["findings"])

        for table_index, table in enumerate(snapshot.tables):
            self._advance()
            for which, relation in (
                ("base", table.base), ("history", table.history)
            ):
                if relation is None or not relation.index_records:
                    continue
                base_root = self._root_of_keyed(
                    merged.get((table_index, which, None), [])
                )
                for index_name in relation.index_records:
                    index_root = self._root_of_keyed(
                        merged.get((table_index, which, index_name), [])
                    )
                    if index_root != base_root:
                        report.findings.append(
                            Finding(
                                "index", SEVERITY_ERROR,
                                f"nonclustered index {index_name!r} on "
                                f"{relation.name!r} is not equivalent to "
                                "the base table",
                                {
                                    "table": relation.name,
                                    "index": index_name,
                                },
                            )
                        )

    # ------------------------------------------------------------------
    # Ledger view definitions (§3.4.2, final step)
    # ------------------------------------------------------------------

    def _check_views(self, report, snapshot) -> None:
        stored = snapshot.views_stored
        for view_name, expected in snapshot.views_expected:
            actual = stored.get(view_name)
            if actual is None:
                report.findings.append(
                    Finding(
                        "view", SEVERITY_ERROR,
                        f"ledger view {view_name!r} is not registered",
                        {"view": view_name},
                    )
                )
            elif actual != expected:
                report.findings.append(
                    Finding(
                        "view", SEVERITY_ERROR,
                        f"definition of ledger view {view_name!r} does not "
                        "match the canonical definition",
                        {"view": view_name},
                    )
                )

    # ------------------------------------------------------------------
    # Checkpoints (incremental cycles)
    # ------------------------------------------------------------------

    def _usable_checkpoint(
        self, checkpoint, snapshot
    ) -> Tuple[Optional[VerificationCheckpoint], Optional[str]]:
        """Decide whether the checkpoint can drive an incremental cycle.

        Anything suspicious disqualifies it and forces a full scan — the
        conservative direction, since a full scan is always sound.
        """
        if checkpoint is None:
            return None, "no checkpoint available"
        if checkpoint.database_guid != snapshot.database_guid:
            return None, "checkpoint belongs to a different database"
        if checkpoint.block_id < snapshot.first_block_id:
            return None, "ledger truncated past the checkpoint block"
        block = snapshot.blocks.get(checkpoint.block_id)
        if block is None:
            return None, f"checkpoint block {checkpoint.block_id} is missing"
        if block.block_hash() != checkpoint.block_hash:
            return (
                None,
                f"recomputed hash of block {checkpoint.block_id} does not "
                "match the checkpoint",
            )
        return checkpoint, None

    def _build_checkpoint(
        self, snapshot, previous: Optional[VerificationCheckpoint]
    ) -> Optional[VerificationCheckpoint]:
        """Build the checkpoint a future incremental cycle will resume from.

        Covers only *closed* blocks: ``max_tid`` is the highest transaction
        id sealed into a closed block, and each table's frontier extends
        over events at or below it.  When the run itself was incremental,
        the previous frontier's O(log N) state is restored and only the new
        leaves are appended — the streaming-hasher property that makes
        checkpoint maintenance O(delta).
        """
        if not snapshot.blocks:
            return None
        block_id = max(snapshot.blocks)
        block_hash = snapshot.blocks[block_id].block_hash()
        max_tid = max(
            (
                entry.transaction_id
                for entry in snapshot.entries.values()
                if entry.block_id <= block_id
            ),
            default=None,
        )
        if max_tid is None:
            return None
        checkpoint = VerificationCheckpoint(
            database_guid=snapshot.database_guid,
            block_id=block_id,
            block_hash=block_hash,
            max_tid=max_tid,
        )
        for table in snapshot.tables:
            events = self._events_by_table.get(table.table_id, {})
            old_frontier = (
                previous.tables.get(table.table_id) if previous else None
            )
            floor = previous.max_tid if old_frontier is not None else None
            stream: List[Tuple[int, int, bytes]] = []
            for tid, pairs in events.items():
                if tid is None or tid > max_tid:
                    continue
                if floor is not None and tid <= floor:
                    continue
                for seq, leaf in pairs:
                    stream.append((tid, seq, leaf))
            stream.sort(key=lambda item: (item[0], item[1]))
            hasher = MerkleHasher()
            if old_frontier is not None:
                hasher.restore(old_frontier.state)
            for _, _, leaf in stream:
                hasher.append(leaf)
            checkpoint.tables[table.table_id] = TableFrontier(
                table_id=table.table_id,
                table_name=table.name,
                frontier_root=hasher.root(),
                leaf_count=hasher.leaf_count,
                state=hasher.snapshot(),
            )
        return checkpoint

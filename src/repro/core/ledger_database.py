"""LedgerDatabase: the public facade over the whole SQL Ledger stack.

Wires the engine, the ledger hooks, the Database Ledger, ledger-table DDL
with its metadata system tables, ledger views, digests, verification,
receipts, schema evolution and truncation into one object — the equivalent
of an Azure SQL database with ledger enabled.

Ledger system tables created at bootstrap:

* ``__ledger_config`` — regular: database GUID, create time, block size.
* ``database_ledger_transactions`` / ``database_ledger_blocks`` — the
  Database Ledger itself (§3.3.1).
* ``__ledger_views`` — regular: canonical ledger-view definitions (§3.4.2).
* ``__ledger_tables_meta`` / ``__ledger_columns_meta`` — *updateable ledger
  tables* tracking every CREATE/DROP of ledger tables and columns, so that
  drop-and-recreate attacks are auditable (§3.5.2, Figure 6).
* ``__ledger_truncations`` — *append-only ledger table* recording ledger
  truncation events (§5.2).
"""

from __future__ import annotations

import datetime as dt
import os
import shutil
import threading
import uuid
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core import system_columns as sc
from repro.core.database_ledger import DatabaseLedger
from repro.core.digest import BlockHeader, DatabaseDigest
from repro.core.hooks import LedgerHooks
from repro.core.ledger_view import (
    canonical_view_definition,
    ledger_view_rows,
)
from repro.core.pipeline import LedgerPipeline
from repro.engine.database import Database
from repro.engine.expressions import eq
from repro.engine.operators import delete_rows, insert_rows, update_rows
from repro.engine.schema import Column, IndexDefinition, TableSchema
from repro.engine.table import Table
from repro.engine.transaction import Transaction
from repro.engine.types import BIGINT, INT, VARBINARY, VARCHAR
from repro.errors import LedgerConfigurationError, TableNotFoundError
from repro.runtime import (
    LedgerContext,
    claim_instance_name,
    release_instance_name,
)
from repro.sql.prepared import StatementCache

CONFIG_TABLE = "__ledger_config"
VIEWS_TABLE = "__ledger_views"
TABLES_META = "__ledger_tables_meta"
COLUMNS_META = "__ledger_columns_meta"
TRUNCATIONS_TABLE = "__ledger_truncations"

HISTORY_SUFFIX = "__ledger_history"

UPDATEABLE = "updateable"
APPEND_ONLY = "append_only"

#: Scaled-down default block size for a laptop-scale reproduction; the
#: paper's production value is DEFAULT_BLOCK_SIZE (100 000).
FACADE_DEFAULT_BLOCK_SIZE = 1000


class LedgerDatabase:
    """A database with SQL Ledger enabled.  Create via :meth:`open`."""

    def __init__(
        self,
        engine: Database,
        hooks: LedgerHooks,
        ledger: DatabaseLedger,
        ctx: Optional[LedgerContext] = None,
    ) -> None:
        self.engine = engine
        self.hooks = hooks
        self.ledger = ledger
        self._ctx = ctx if ctx is not None else ledger.context
        self._owns_instance_name = False
        #: Stage 3 of the commit pipeline: the background block builder and
        #: the ``drain()`` barrier (started by :meth:`open`).
        self.pipeline = LedgerPipeline(ledger, ctx=self._ctx)
        #: Prepared-statement cache shared by every SQL session on this
        #: database; DDL through any session invalidates it for all.
        self.statement_cache = StatementCache()
        self._signing_key = None
        self._sql_session = None
        self._monitor = None
        self._obs_server = None
        self._flight_recorder = None
        self._group_committer = None
        self._close_lock = threading.Lock()
        self._closed = False

    @property
    def context(self) -> LedgerContext:
        """This instance's obs/fault scope (see :mod:`repro.runtime`)."""
        return self._ctx

    @property
    def ledger_lock(self):
        """The storage-stage lock serializing access to the engine.

        Historical alias: before the staged pipeline this was a coarse
        database-wide mutex.  It is now the ledger's ``storage_lock`` — the
        innermost stage lock — which the SQL session, the continuous
        monitor and direct-API consumers take per operation, while
        sequencing and queueing proceed under their own locks.
        """
        return self.ledger.storage_lock

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        block_size: Optional[int] = None,
        clock: Optional[Callable[[], dt.datetime]] = None,
        sync: bool = False,
        ctx: Optional[LedgerContext] = None,
        instance: Optional[str] = None,
    ) -> "LedgerDatabase":
        """Open (bootstrapping or recovering) a ledger database at ``path``.

        ``ctx`` supplies a pre-built instance scope (shards pass one in);
        otherwise a name is claimed automatically — the first open in a
        process gets the bare default scope, concurrent extras get ``i2``,
        ``i3`` … so their locks and thread roles never collide.  Pass
        ``instance`` to pick the name explicitly.
        """
        owns_name = False
        if ctx is None:
            name = claim_instance_name(instance)
            ctx = LedgerContext(name=name)
            owns_name = True
        try:
            hooks = LedgerHooks(ctx=ctx)
            engine = Database.open(
                path, hooks=hooks, clock=clock, sync=sync, ctx=ctx
            )
        except Exception:
            if owns_name:
                release_instance_name(ctx.name)
            raise
        fresh = not engine.has_table(CONFIG_TABLE)
        effective_block_size = block_size or FACADE_DEFAULT_BLOCK_SIZE
        if not fresh and block_size is None:
            stored = cls._read_config_static(engine, "block_size")
            if stored is not None:
                effective_block_size = int(stored)
        ledger = DatabaseLedger(
            engine, block_size=effective_block_size, ctx=ctx
        )
        hooks.bind(engine, ledger)
        db = cls(engine, hooks, ledger, ctx=ctx)
        db._owns_instance_name = owns_name
        if fresh:
            db._bootstrap(effective_block_size)
        else:
            payloads, state = hooks.take_recovery_data()
            ledger.recover(payloads, state)
            db._load_truncation_anchor()
            ctx.events.emit(
                "recovery", "recovery.ledger_recovered",
                path=path, queued_entries=len(payloads),
                open_block_id=ledger.open_block_id,
            )
        db.pipeline.start()
        return db

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has completed (or begun on this thread)."""
        return self._closed

    def close(self) -> None:
        """Stop every background thread, then close the engine.

        Order matters: the monitor and HTTP server read through the ledger,
        and the block builder writes through the engine — all must be
        stopped and joined before the engine goes away so no daemon thread
        leaks into the next test or touches a closed database.

        Idempotent and safe to call concurrently — a second close (or one
        racing a server shutdown) serializes behind the first and returns
        once teardown is complete.  In-flight ``drain()`` barriers are
        waited out before the engine goes away; drains arriving after that
        fail with a clean ``LedgerError`` instead of racing the teardown.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            if self._group_committer is not None:
                self._group_committer.close()
            self.stop_monitor()
            self.stop_obs_server()
            self.stop_flight_recorder()
            if not self.engine.closed:
                self.pipeline.stop(drain=True)
            else:
                self.pipeline.stop(drain=False)
            # Let digest/receipt consumers already past stop() finish their
            # barrier against a live engine; block everyone after them.
            self.pipeline.disable_drains()
            self.engine.close()
            if self._owns_instance_name:
                release_instance_name(self._ctx.name)
                self._owns_instance_name = False

    def checkpoint(self) -> None:
        """Checkpoint the engine after closing every closable block."""
        with self.ledger.storage_lock:
            self.pipeline.drain(seal_open=False)
            self.engine.checkpoint()

    def simulate_crash(self) -> None:
        """Crash without draining: sealed blocks are left for recovery."""
        self.pipeline.stop(drain=False)
        self.engine.simulate_crash()
        # The "process" died: its instance name frees up for the reopened
        # incarnation, which would otherwise claim a fresh ``iN`` scope.
        if self._owns_instance_name:
            release_instance_name(self._ctx.name)
            self._owns_instance_name = False

    def backup(self, destination: str) -> None:
        """Checkpoint and copy the database directory (cold backup, §3.7)."""
        self.engine.checkpoint()
        if os.path.exists(destination):
            raise LedgerConfigurationError(
                f"backup destination {destination!r} already exists"
            )
        shutil.copytree(self.engine.path, destination)

    @classmethod
    def restore_backup(
        cls,
        backup_path: str,
        target_path: str,
        clock: Optional[Callable[[], dt.datetime]] = None,
    ) -> "LedgerDatabase":
        """Restore a cold backup as a new database *incarnation* (§3.6).

        The restored database gets a fresh ``create_time`` so that digests
        uploaded after the restore are distinguishable from the original
        incarnation's.
        """
        if os.path.exists(target_path):
            raise LedgerConfigurationError(
                f"restore target {target_path!r} already exists"
            )
        shutil.copytree(backup_path, target_path)
        db = cls.open(target_path, clock=clock)
        db._set_config("create_time", db.engine.clock().isoformat())
        return db

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def _bootstrap(self, block_size: int) -> None:
        engine = self.engine
        engine.create_table(
            TableSchema(
                CONFIG_TABLE,
                [
                    Column("key", VARCHAR(64), nullable=False),
                    Column("value", VARCHAR(256), nullable=False),
                ],
                primary_key=["key"],
            ),
            {"role": "system", "system_kind": "config"},
        )
        self.ledger.ensure_system_tables()
        engine.create_table(
            TableSchema(
                VIEWS_TABLE,
                [
                    Column("view_name", VARCHAR(256), nullable=False),
                    Column("table_name", VARCHAR(128), nullable=False),
                    Column("definition", VARCHAR(8000), nullable=False),
                ],
                primary_key=["view_name"],
            ),
            {"role": "system", "system_kind": "views"},
        )
        self._set_config("database_guid", str(uuid.uuid4()))
        self._set_config("create_time", engine.clock().isoformat())
        self._set_config("block_size", str(block_size))

        # The metadata tables are themselves ledger tables (§3.5.2); they are
        # created unregistered and then registered together, since they
        # cannot be registered before they exist.
        self.create_ledger_table(
            TableSchema(
                TABLES_META,
                [
                    Column("table_id", INT, nullable=False),
                    Column("table_name", VARCHAR(160), nullable=False),
                    Column("ledger_type", VARCHAR(16), nullable=False),
                    Column("history_table_name", VARCHAR(160)),
                ],
                primary_key=["table_id"],
            ),
            ledger_type=UPDATEABLE,
            _register=False,
        )
        self.create_ledger_table(
            TableSchema(
                COLUMNS_META,
                [
                    Column("table_id", INT, nullable=False),
                    Column("ordinal", INT, nullable=False),
                    Column("column_name", VARCHAR(160), nullable=False),
                    Column("type_name", VARCHAR(64), nullable=False),
                ],
                primary_key=["table_id", "ordinal"],
            ),
            ledger_type=UPDATEABLE,
            _register=False,
        )
        self.create_ledger_table(
            TableSchema(
                TRUNCATIONS_TABLE,
                [
                    Column("truncation_id", INT, nullable=False),
                    Column("truncated_through_block", BIGINT, nullable=False),
                    Column("truncated_through_tid", BIGINT, nullable=False),
                    Column("anchor_hash", VARBINARY(32), nullable=False),
                    Column("note", VARCHAR(256)),
                ],
                primary_key=["truncation_id"],
            ),
            ledger_type=APPEND_ONLY,
            _register=False,
        )
        txn = self.begin(username="ledger_system")
        for name in (TABLES_META, COLUMNS_META, TRUNCATIONS_TABLE):
            self._register_ledger_table(txn, self.engine.table(name))
        self.commit(txn)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    @staticmethod
    def _read_config_static(engine: Database, key: str) -> Optional[str]:
        table = engine.table(CONFIG_TABLE)
        hit = table.seek([key])
        if hit is None:
            return None
        _, row = hit
        return row[table.schema.column("value").ordinal]

    def get_config(self, key: str) -> Optional[str]:
        return self._read_config_static(self.engine, key)

    def _set_config(self, key: str, value: str) -> None:
        table = self.engine.table(CONFIG_TABLE)
        txn = self.engine.begin(username="ledger_system")
        hit = table.seek([key])
        if hit is None:
            table.insert(txn, table.schema.row_from_visible([key, value]))
        else:
            rid, row = hit
            new_row = list(row)
            new_row[table.schema.column("value").ordinal] = value
            table.update_row(txn, rid, new_row)
        self.engine.commit(txn)

    @property
    def database_guid(self) -> str:
        guid = self.get_config("database_guid")
        assert guid is not None
        return guid

    @property
    def database_create_time(self) -> str:
        create_time = self.get_config("create_time")
        assert create_time is not None
        return create_time

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self, username: str = "app_user") -> Transaction:
        with self.ledger.storage_lock:
            return self.engine.begin(username)

    def commit(self, txn: Transaction) -> Optional[Dict[str, Any]]:
        """Commit under the storage lock.

        Holding the storage lock across the whole commit (sequencer
        assignment through post-commit enqueue) is what lets a drain that
        already holds the storage lock assume every sealed block's entries
        are enqueued — the pipeline's no-deadlock invariant.
        """
        with self.ledger.storage_lock:
            return self.engine.commit(txn)

    def rollback(self, txn: Transaction) -> None:
        with self.ledger.storage_lock:
            self.engine.rollback(txn)

    def savepoint(self, txn: Transaction, name: str) -> None:
        with self.ledger.storage_lock:
            self.engine.savepoint(txn, name)

    def rollback_to_savepoint(self, txn: Transaction, name: str) -> None:
        with self.ledger.storage_lock:
            self.engine.rollback_to_savepoint(txn, name)

    # ------------------------------------------------------------------
    # Ledger table DDL (§2.1, §3.1)
    # ------------------------------------------------------------------

    def create_ledger_table(
        self,
        schema: TableSchema,
        ledger_type: str = UPDATEABLE,
        _register: bool = True,
    ) -> Table:
        """Create a ledger table (and, if updateable, its history table)."""
        if ledger_type not in (UPDATEABLE, APPEND_ONLY):
            raise LedgerConfigurationError(
                f"unknown ledger type {ledger_type!r}; use "
                f"{UPDATEABLE!r} or {APPEND_ONLY!r}"
            )
        with self.ledger.storage_lock:
            return self._create_ledger_table_locked(
                schema, ledger_type, _register
            )

    def _create_ledger_table_locked(
        self, schema: TableSchema, ledger_type: str, _register: bool
    ) -> Table:
        extended = sc.extend_with_system_columns(
            schema, include_end=(ledger_type == UPDATEABLE)
        )
        table = self.engine.create_table(
            extended, {"role": "ledger", "ledger_type": ledger_type}
        )
        history: Optional[Table] = None
        if ledger_type == UPDATEABLE:
            history_name = schema.name + HISTORY_SUFFIX
            history = self.engine.create_table(
                sc.history_schema_for(extended, history_name),
                {"role": "history", "ledger_table_id": table.table_id},
            )
            self.engine.update_table_options(
                table.table_id, {"history_table_id": history.table_id}
            )
        self._register_view(table, history)
        if _register:
            txn = self.begin(username="ledger_system")
            self._register_ledger_table(txn, table)
            self.commit(txn)
        self._ctx.events.emit(
            "schema", "schema.table_created",
            table=table.name, ledger_type=ledger_type,
        )
        return table

    def create_table(self, schema: TableSchema) -> Table:
        """Create a regular (non-ledger) table."""
        return self.engine.create_table(schema, {})

    def drop_ledger_table(self, name: str) -> str:
        """Logically drop a ledger table: rename, never delete (§3.5.2).

        Returns the internal name the table now lives under.  The rename is
        recorded in the ledger metadata tables, so the drop shows up in the
        table-operations view (Figure 6) and survives verification.
        """
        with self.ledger.storage_lock:
            return self._drop_ledger_table_locked(name)

    def _drop_ledger_table_locked(self, name: str) -> str:
        table = self.ledger_table(name)
        dropped_name = f"MS_DroppedTable_{name}_{table.table_id}"
        self.engine.rename_table(name, dropped_name)
        history_id = table.options.get("history_table_id")
        if history_id is not None:
            history = self.engine.table_by_id(history_id)
            self.engine.rename_table(
                history.name, f"MS_DroppedTable_{history.name}_{history.table_id}"
            )
        txn = self.begin(username="ledger_system")
        meta = self.engine.table(TABLES_META)
        update_rows(
            txn, meta, {"table_name": dropped_name}, eq("table_id", table.table_id)
        )
        self.commit(txn)
        self._update_view_registration(f"{name}_ledger", table)
        self._ctx.events.emit(
            "schema", "schema.table_dropped",
            table=name, renamed_to=dropped_name,
        )
        return dropped_name

    def create_index(self, table_name: str, definition: IndexDefinition) -> None:
        """Physical schema change: allowed freely on ledger tables (§3.5)."""
        self.engine.create_index(table_name, definition)

    def drop_index(self, table_name: str, index_name: str) -> None:
        self.engine.drop_index(table_name, index_name)

    def _register_ledger_table(self, txn: Transaction, table: Table) -> None:
        meta = self.engine.table(TABLES_META)
        history_id = table.options.get("history_table_id")
        history_name = (
            self.engine.table_by_id(history_id).name if history_id else None
        )
        insert_rows(
            txn,
            meta,
            [[
                table.table_id,
                table.name,
                table.options["ledger_type"],
                history_name,
            ]],
        )
        columns_meta = self.engine.table(COLUMNS_META)
        for column in table.schema.visible_columns:
            insert_rows(
                txn,
                columns_meta,
                [[table.table_id, column.ordinal, column.name,
                  column.sql_type.render()]],
            )

    def _register_view(self, table: Table, history: Optional[Table]) -> None:
        views = self.engine.table(VIEWS_TABLE)
        definition = canonical_view_definition(
            table.name,
            history.name if history else None,
            [c.name for c in table.schema.visible_columns],
        )
        txn = self.engine.begin(username="ledger_system")
        views.insert(
            txn,
            views.schema.row_from_visible(
                [f"{table.name}_ledger", table.name, definition]
            ),
        )
        self.engine.commit(txn)

    def _update_view_registration(self, old_view_name: str, table: Table) -> None:
        """Re-key a table's view registration after rename or schema change."""
        history_id = table.options.get("history_table_id")
        history = self.engine.table_by_id(history_id) if history_id else None
        views = self.engine.table(VIEWS_TABLE)
        txn = self.engine.begin(username="ledger_system")
        hit = views.seek([old_view_name])
        if hit is not None:
            views.delete_row(txn, hit[0])
        definition = canonical_view_definition(
            table.name,
            history.name if history else None,
            [c.name for c in table.schema.visible_columns],
        )
        views.insert(
            txn,
            views.schema.row_from_visible(
                [f"{table.name}_ledger", table.name, definition]
            ),
        )
        self.engine.commit(txn)

    # ------------------------------------------------------------------
    # Table access
    # ------------------------------------------------------------------

    def ledger_table(self, name: str) -> Table:
        table = self.engine.table(name)
        if table.options.get("role") != "ledger":
            raise LedgerConfigurationError(f"{name!r} is not a ledger table")
        return table

    def history_table(self, ledger_table_name: str) -> Optional[Table]:
        table = self.ledger_table(ledger_table_name)
        history_id = table.options.get("history_table_id")
        return self.engine.table_by_id(history_id) if history_id else None

    def ledger_tables(self) -> List[Table]:
        """Every live ledger table, dropped ones included (they still verify)."""
        return [
            self.engine.table(info.name)
            for info in self.engine.catalog.tables()
            if info.options.get("role") == "ledger"
        ]

    # ------------------------------------------------------------------
    # DML convenience API
    # ------------------------------------------------------------------

    def insert(
        self, txn: Transaction, table_name: str, rows: Sequence[Sequence[Any]]
    ) -> int:
        """Insert rows given in visible-column order."""
        with self.ledger.storage_lock:
            return insert_rows(txn, self.engine.table(table_name), rows)

    def update(
        self,
        txn: Transaction,
        table_name: str,
        assignments: Dict[str, Any],
        where: Any = None,
    ) -> int:
        with self.ledger.storage_lock:
            return update_rows(
                txn, self.engine.table(table_name), assignments, where
            )

    def delete(self, txn: Transaction, table_name: str, where: Any = None) -> int:
        with self.ledger.storage_lock:
            return delete_rows(txn, self.engine.table(table_name), where)

    def select(
        self,
        table_name: str,
        where: Any = None,
        include_hidden: bool = False,
    ) -> List[Dict[str, Any]]:
        from repro.engine.operators import access_path

        with self.ledger.storage_lock:
            table = self.engine.table(table_name)
            return [
                named
                for _, named in access_path(
                    table, where, include_hidden=include_hidden
                )
            ]

    # ------------------------------------------------------------------
    # Ledger views (§2.1)
    # ------------------------------------------------------------------

    def ledger_view(self, table_name: str) -> List[Dict[str, Any]]:
        """All row operations ever performed on a ledger table (Figure 2)."""
        table = self.ledger_table(table_name)
        return ledger_view_rows(table, self.history_table(table_name))

    def table_operations_view(self) -> List[Dict[str, Any]]:
        """CREATE/DROP history of every ledger table (Figure 6, §3.5.2)."""
        operations = []
        for event in self.ledger_view(TABLES_META):
            if event["ledger_operation_type_desc"] != "INSERT":
                continue
            name = event["table_name"]
            operations.append(
                {
                    "table_name": name,
                    "table_id": event["table_id"],
                    "operation": "DROP" if name.startswith("MS_DroppedTable_") else "CREATE",
                    "transaction_id": event["ledger_transaction_id"],
                }
            )
        operations.sort(key=lambda op: (op["transaction_id"], op["table_id"]))
        return operations

    # ------------------------------------------------------------------
    # Digests (§2.2)
    # ------------------------------------------------------------------

    def generate_digest(self) -> DatabaseDigest:
        """Drain the pipeline, close the open block, export the Digest.

        The drain barrier waits for in-flight concurrent commits, so the
        digest covers every transaction that committed before this call.
        """
        self.pipeline.drain(seal_open=True)
        return self.ledger.generate_digest(
            self.database_guid, self.database_create_time
        )

    def block_headers(self, from_block: int, to_block: int) -> List[BlockHeader]:
        return self.ledger.block_headers(from_block, to_block)

    # ------------------------------------------------------------------
    # Verification (§3.4)
    # ------------------------------------------------------------------

    def verify(
        self,
        digests: Sequence[DatabaseDigest],
        table_names=None,
        progress=None,
        parallelism: int = 1,
        mode: str = "full",
        checkpoint=None,
        build_checkpoint: bool = False,
    ):
        """Run ledger verification against externally stored digests.

        Returns a :class:`repro.core.verification.VerificationReport`; raise
        on failure by calling ``report.raise_if_failed()``.  ``progress`` is
        an optional callable receiving
        :class:`repro.core.verification.VerificationProgress` events as the
        run advances through invariants and scans rows/blocks.

        Verification only holds the storage lock while it captures its
        snapshot; the invariant checks run concurrently with commits.
        ``parallelism`` fans the scan-heavy invariants out over worker
        processes; ``mode="incremental"`` with a ``checkpoint`` from a prior
        passing run verifies only the delta (falling back to a full scan
        whenever the checkpoint is unusable); ``build_checkpoint`` asks a
        passing run to produce the next checkpoint.
        """
        from repro.core.verification import LedgerVerifier

        return LedgerVerifier(self, progress=progress).verify(
            digests,
            table_names=table_names,
            parallelism=parallelism,
            mode=mode,
            checkpoint=checkpoint,
            build_checkpoint=build_checkpoint,
        )

    # ------------------------------------------------------------------
    # Telemetry (see repro.obs)
    # ------------------------------------------------------------------

    @property
    def telemetry(self):
        """This instance's :class:`repro.obs.Telemetry`.

        Resolved through the instance context — the default context wraps
        the process-wide singleton (like a Prometheus default registry), so
        a plain ``open()`` behaves exactly as before, while shards can carry
        their own Telemetry.
        """
        return self._ctx.obs

    def get_metrics(self):
        """The metrics registry recording this process's ledger activity."""
        return self.telemetry.metrics

    @property
    def trace_sink(self):
        """The span recorder capturing pipeline traces (ring buffer)."""
        return self.telemetry.tracer.recorder

    def enable_telemetry(
        self, metrics: bool = True, tracing: bool = True, events: bool = True
    ) -> None:
        self.telemetry.enable(metrics=metrics, tracing=tracing, events=events)

    def disable_telemetry(self) -> None:
        self.telemetry.disable()

    # ------------------------------------------------------------------
    # Watchtower: continuous monitor + observability server
    # ------------------------------------------------------------------

    @property
    def monitor(self):
        """The attached :class:`repro.obs.monitor.ContinuousVerifier`, if any."""
        return self._monitor

    @property
    def obs_server(self):
        """The attached :class:`repro.obs.server.ObservabilityServer`, if any."""
        return self._obs_server

    def start_monitor(self, interval: float = 5.0, **kwargs):
        """Start (or return) the continuous-verification monitor thread."""
        if self._monitor is not None and self._monitor.running:
            return self._monitor
        from repro.obs.monitor import ContinuousVerifier

        self._monitor = ContinuousVerifier(self, interval=interval, **kwargs)
        self._monitor.start()
        return self._monitor

    def stop_monitor(self) -> None:
        if self._monitor is not None:
            self._monitor.stop()
            self._monitor = None

    def start_obs_server(self, port: int = 0, host: str = "127.0.0.1"):
        """Start the HTTP observability endpoint; returns the server.

        ``port=0`` binds an ephemeral port — read it back from
        ``server.port`` after this returns.
        """
        if self._obs_server is not None and self._obs_server.running:
            return self._obs_server
        from repro.obs.server import ObservabilityServer

        self._obs_server = ObservabilityServer(db=self, host=host, port=port)
        self._obs_server.start()
        return self._obs_server

    def stop_obs_server(self) -> None:
        if self._obs_server is not None:
            self._obs_server.stop()
            self._obs_server = None

    @property
    def flight_recorder(self):
        """The armed :class:`repro.obs.flight.FlightRecorder`, if any."""
        return self._flight_recorder

    def start_flight_recorder(self, directory: str):
        """Arm the black box: dump telemetry bundles to ``directory``.

        The recorder listens on the event log and atomically writes a
        bundle (recent spans, in-flight spans, event tail, metrics
        snapshot) on tamper detection, fault injection, or a builder
        crash/give-up.  Returns the recorder; idempotent while armed.
        """
        if self._flight_recorder is not None:
            return self._flight_recorder
        from repro.obs.flight import FlightRecorder

        self._flight_recorder = FlightRecorder(directory).install()
        return self._flight_recorder

    def stop_flight_recorder(self) -> None:
        if self._flight_recorder is not None:
            self._flight_recorder.uninstall()
            self._flight_recorder = None

    # ------------------------------------------------------------------
    # Receipts (§5.1)
    # ------------------------------------------------------------------

    def signing_key(self):
        """The database's receipt-signing key (generated lazily)."""
        if self._signing_key is None:
            from repro.crypto.rsa import generate_keypair

            self._signing_key = generate_keypair(bits=1024)
        return self._signing_key

    def set_signing_key(self, keypair) -> None:
        self._signing_key = keypair

    def transaction_receipt(self, transaction_id: int):
        from repro.core.receipts import generate_receipt

        return generate_receipt(self, transaction_id)

    # ------------------------------------------------------------------
    # Schema evolution (§3.5) and truncation (§5.2)
    # ------------------------------------------------------------------

    def add_column(self, table_name: str, column: Column) -> None:
        from repro.core.schema_changes import add_column

        add_column(self, table_name, column)

    def drop_column(self, table_name: str, column_name: str) -> None:
        from repro.core.schema_changes import drop_column

        drop_column(self, table_name, column_name)

    def alter_column_type(
        self, table_name: str, column_name: str, new_type, converter=None
    ) -> None:
        from repro.core.schema_changes import alter_column_type

        alter_column_type(self, table_name, column_name, new_type, converter)

    def truncate_ledger(self, through_block: int, note: Optional[str] = None):
        from repro.core.truncation import truncate_ledger

        return truncate_ledger(self, through_block, note)

    def _load_truncation_anchor(self) -> None:
        """Re-install the chain anchor from the truncations ledger table."""
        try:
            table = self.engine.table(TRUNCATIONS_TABLE)
        except TableNotFoundError:
            return
        best = None
        for _, row in table.scan():
            named = {
                c.name: row[c.ordinal] for c in table.schema.visible_columns
            }
            if best is None or named["truncated_through_block"] > best[0]:
                best = (named["truncated_through_block"], named["anchor_hash"])
        if best is not None:
            self.ledger.set_anchor(best[0], best[1])

    # ------------------------------------------------------------------
    # SQL front-end
    # ------------------------------------------------------------------

    def sql(self, statement: str):
        """Execute a SQL statement through the SQL front-end.

        Note the shared default session carries transaction state (BEGIN /
        COMMIT), so interleaving multi-statement transactions from several
        threads through *this* helper is ill-defined; concurrent drivers
        should create one :class:`repro.sql.session.SqlSession` per thread.
        """
        if self._sql_session is None:
            with self.ledger.storage_lock:
                if self._sql_session is None:
                    from repro.sql.session import SqlSession

                    self._sql_session = SqlSession(self)
        return self._sql_session.execute(statement)

    @property
    def group_committer(self):
        """Lazy per-database :class:`~repro.core.group_commit.GroupCommitter`.

        Concurrent writers route autocommit work units through this to
        amortize the storage-lock round-trip and (in sync mode) the fsync
        across a whole group; the ledger server's write path uses it for
        every commit.
        """
        if self._group_committer is None:
            with self.ledger.storage_lock:
                if self._group_committer is None:
                    from repro.core.group_commit import GroupCommitter

                    self._group_committer = GroupCommitter(self)
        return self._group_committer

    def __repr__(self) -> str:
        return f"<LedgerDatabase {self.engine.path!r}>"

"""The Database Ledger: transaction entries, blocks, and digests (§2.2, §3.3).

Committed transactions that touched ledger tables become *transaction
entries*.  Entries are assigned a (block id, ordinal) at commit time by the
**sequencer** and ride on the COMMIT WAL record; they then sit in an
**in-memory queue** until a checkpoint batches them into the
``database_ledger_transactions`` system table — the contention-avoiding
design of §3.3.2.

Block formation is *staged* (§4.2): when the sequencer hands out the last
ordinal of a block it **seals** the block — pure in-memory bookkeeping on the
commit hot path — and block *closure* (Merkle root over the entry hashes,
hash chaining, persistence into ``database_ledger_blocks``) happens later,
off the critical path, driven by the block-builder thread of
:class:`repro.core.pipeline.LedgerPipeline` or by an explicit ``drain()``.

Concurrency is per stage rather than one coarse mutex:

* ``sequencer_lock`` — guards ordinal/block assignment and sealing;
* ``queue_lock`` — guards the entry queue and per-block enqueue accounting
  (its condition variable is how ``drain()`` waits for in-flight commits);
* ``storage_lock`` — guards every storage-engine access (the engine itself
  is not thread-safe); block closure, verification scans and SQL execution
  all serialize on it.

Lock hierarchy (acquire left to right, never the reverse):
``storage_lock`` → ``sequencer_lock`` → ``queue_lock``.

Both system tables are ordinary relational tables: their integrity is
protected by the chain itself plus externally stored digests, exactly as in
the paper.
"""

from __future__ import annotations

import datetime as dt
import threading
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.digest import BlockHeader, DatabaseDigest
from repro.core.entries import BlockRow, TransactionEntry
from repro.crypto.merkle import MerkleTree
from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.table import Table
from repro.engine.transaction import Transaction
from repro.engine.types import BIGINT, DATETIME, VARBINARY, VARCHAR
from repro.errors import DigestError, LedgerError
from repro.faults import FAULTS
from repro.obs.context import TraceContext
from repro.obs.lockstats import InstrumentedRLock
from repro.obs.tracing import build_lineage_tree, render_span_tree
from repro.runtime import DEFAULT_CONTEXT, LedgerContext

FAULTS.register(
    "ledger.flush_queue",
    "Before the queue-flush transaction begins.  Queued entries stay in "
    "memory (and on the WAL via their COMMIT records); the next flush or "
    "recovery re-drains them.",
)
FAULTS.register(
    "ledger.block_persist",
    "Inside block closure, before the block row is inserted.  The block "
    "stays sealed-but-open; recovery rebuilds the sealed queue from the "
    "WAL and closure is retried.",
)

TRANSACTIONS_TABLE = "database_ledger_transactions"
BLOCKS_TABLE = "database_ledger_blocks"

#: The paper uses 100K transactions per block; tests and examples shrink it.
DEFAULT_BLOCK_SIZE = 100_000

#: Queue wait (seconds) beyond which a commit is reported as slow.
DEFAULT_SLOW_TXN_THRESHOLD = 1.0

#: Cap on per-block ``block.append`` → commit links and on retained
#: block-trace contexts: enough to stitch lineage without unbounded growth.
_MAX_BLOCK_LINKS = 16
_MAX_BLOCK_TRACES = 64

#: Cap on rendered lineage lines embedded in a ``txn.slow`` event.
_MAX_SLOW_LINEAGE_LINES = 80

def _ledger_metrics(reg):
    class _Families:
        entries_enqueued = reg.counter(
            "ledger_entries_enqueued_total",
            "Transaction entries enqueued after durable commit",
        )
        entries_flushed = reg.counter(
            "ledger_entries_flushed_total",
            "Transaction entries batch-inserted into the system table",
        )
        queue_depth = reg.gauge(
            "ledger_queue_depth",
            "Transaction entries currently waiting in the in-memory queue",
        )
        sealed_pending = reg.gauge(
            "ledger_sealed_blocks_pending",
            "Blocks sealed by the sequencer but not yet closed by the "
            "block builder",
        )
        blocks_sealed = reg.counter(
            "ledger_blocks_sealed_total", "Blocks sealed by the sequencer"
        )
        blocks_closed = reg.counter(
            "ledger_blocks_closed_total", "Ledger blocks formed and appended"
        )
        block_close_seconds = reg.histogram(
            "ledger_block_close_seconds",
            "Time to form one block (flush, Merkle root, persist)",
        )
        block_transactions = reg.histogram(
            "ledger_block_transactions",
            "Transactions per closed block",
            buckets=(1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000),
        )
        stage_seconds = reg.histogram(
            "pipeline_stage_seconds",
            "Wall time per commit-pipeline stage operation "
            "(seal, flush, merkle, persist, close, drain)",
            ("stage",),
        )
        queue_wait_seconds = reg.histogram(
            "pipeline_queue_wait_seconds",
            "Per-entry wait between durable enqueue and block-closure start",
        )
        queue_oldest_age = reg.gauge(
            "ledger_queue_oldest_age_seconds",
            "Age of the oldest entry still waiting in the in-memory queue",
        )
        digests_generated = reg.counter(
            "digest_generated_total", "Database digests generated"
        )
        digest_generate_seconds = reg.histogram(
            "digest_generate_seconds", "Digest generation latency"
        )

    return _Families


def _transactions_schema() -> TableSchema:
    return TableSchema(
        TRANSACTIONS_TABLE,
        [
            Column("transaction_id", BIGINT, nullable=False),
            Column("block_id", BIGINT, nullable=False),
            Column("ordinal", BIGINT, nullable=False),
            Column("commit_time", DATETIME, nullable=False),
            Column("username", VARCHAR(128), nullable=False),
            Column("table_hashes", VARBINARY(8000), nullable=False),
        ],
        primary_key=["transaction_id"],
    )


def _blocks_schema() -> TableSchema:
    return TableSchema(
        BLOCKS_TABLE,
        [
            Column("block_id", BIGINT, nullable=False),
            Column("previous_block_hash", VARBINARY(32), nullable=True),
            Column("transactions_root", VARBINARY(32), nullable=False),
            Column("transaction_count", BIGINT, nullable=False),
            Column("closed_time", DATETIME, nullable=False),
        ],
        primary_key=["block_id"],
    )


class DatabaseLedger:
    """Manages the blockchain of transaction blocks for one database."""

    def __init__(
        self,
        engine: Database,
        block_size: int = DEFAULT_BLOCK_SIZE,
        ctx: Optional[LedgerContext] = None,
    ) -> None:
        if block_size < 1:
            raise LedgerError("block size must be at least 1")
        self._engine = engine
        self._block_size = block_size
        if ctx is None:
            ctx = getattr(engine, "context", None) or DEFAULT_CONTEXT
        self._ctx = ctx
        self._obs = ctx.obs
        self._faults = ctx.faults
        self._m = ctx.metrics.handles("ledger", _ledger_metrics)
        #: Stage locks.  ``storage_lock`` is shared with every consumer of
        #: the (single-threaded) storage engine via LedgerDatabase/pipeline.
        #: Instrumented: wait/hold/contention per lock show up under
        #: ``lock_*_seconds{lock="ledger.*"}`` and on ``/locks``.  Named
        #: ledgers (shards) get a ``@name`` suffix so side-by-side ledgers
        #: never collide in the lock registry.
        self.storage_lock = InstrumentedRLock(
            ctx.scoped("ledger.storage"), metrics=ctx.metrics
        )
        self.sequencer_lock = InstrumentedRLock(
            ctx.scoped("ledger.sequencer"), metrics=ctx.metrics
        )
        self.queue_lock = InstrumentedRLock(
            ctx.scoped("ledger.queue"), metrics=ctx.metrics
        )
        self._queue_cv = threading.Condition(self.queue_lock)
        self._queue: List[TransactionEntry] = []
        self._open_block_id = 0
        self._open_ordinal = 0
        #: Sealed-but-unclosed blocks in id order: (block_id, entry_count).
        self._sealed: Deque[Tuple[int, int]] = deque()
        #: Durably enqueued entries per not-yet-closed block (cumulative —
        #: flushing the queue to the system table does not decrement it).
        self._enqueued: Dict[int, int] = {}
        #: Cached highest closed block id (no storage scan; -1 when none).
        self._closed_height = -1
        #: Pipeline wake-up: invoked when a sealed block becomes closable.
        self._sealed_ready_callback: Optional[Callable[[], None]] = None
        # Set after truncation: (last truncated block id, its hash).
        self._anchor: Optional[Tuple[int, bytes]] = None
        #: Telemetry side-channel (guarded by ``queue_lock``): per queued
        #: entry, (enqueue monotonic_ns, trace-context payload or None).
        #: Consumed by block closure to compute queue wait and to stitch the
        #: builder's spans into the originating commit's trace.  Never part
        #: of hashed state.
        self._entry_meta: Dict[int, Tuple[int, Optional[Dict[str, Any]]]] = {}
        #: Trace context of the ``block.append`` span per recently closed
        #: block (guarded by ``queue_lock``), so digest generation/upload
        #: can link back to the block that covers them.
        self._block_traces: Dict[int, Dict[str, Any]] = {}
        #: Queue waits beyond this many seconds emit a ``txn.slow`` event
        #: carrying the offending commit's lineage tree.
        self.slow_txn_threshold = DEFAULT_SLOW_TXN_THRESHOLD

    # ------------------------------------------------------------------
    # Bootstrap / configuration
    # ------------------------------------------------------------------

    def ensure_system_tables(self) -> None:
        if not self._engine.has_table(TRANSACTIONS_TABLE):
            self._engine.create_table(
                _transactions_schema(),
                {"role": "system", "system_kind": "ledger_transactions"},
            )
        if not self._engine.has_table(BLOCKS_TABLE):
            self._engine.create_table(
                _blocks_schema(), {"role": "system", "system_kind": "ledger_blocks"}
            )

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def context(self) -> LedgerContext:
        return self._ctx

    @property
    def open_block_id(self) -> int:
        return self._open_block_id

    @property
    def pending_entries(self) -> int:
        """Entries still in the in-memory queue (not yet in the system table)."""
        with self.queue_lock:
            return len(self._queue)

    @property
    def closed_block_height(self) -> int:
        """Highest closed block id, served from cache (no storage access)."""
        return self._closed_height

    def sealed_pending(self) -> int:
        """Blocks sealed by the sequencer but not yet closed."""
        with self.queue_lock:
            return len(self._sealed)

    def set_sealed_ready_callback(
        self, callback: Optional[Callable[[], None]]
    ) -> None:
        """Install the pipeline's wake-up for newly closable sealed blocks."""
        self._sealed_ready_callback = callback

    def set_anchor(self, block_id: int, block_hash: bytes) -> None:
        """Install the truncation anchor: the chain now starts after it."""
        self._anchor = (block_id, block_hash)

    @property
    def anchor(self) -> Optional[Tuple[int, bytes]]:
        return self._anchor

    def first_block_id(self) -> int:
        """The first block that should exist in the chain."""
        return self._anchor[0] + 1 if self._anchor else 0

    # ------------------------------------------------------------------
    # Stage 2 — the sequencer (called by the ledger hooks at commit)
    # ------------------------------------------------------------------

    def assign(
        self, txn: Transaction, table_roots: Tuple[Tuple[int, bytes], ...]
    ) -> TransactionEntry:
        """Assign the committing transaction its slot in the chain (§3.3.2).

        Pure in-memory bookkeeping — this runs on the commit hot path.  When
        the assignment fills the open block, the block is *sealed* (also pure
        bookkeeping); Merkle root computation and persistence happen later,
        off the commit path.
        """
        assert txn.commit_time is not None
        with self.sequencer_lock:
            entry = TransactionEntry(
                transaction_id=txn.tid,
                block_id=self._open_block_id,
                ordinal=self._open_ordinal,
                commit_time=txn.commit_time,
                username=txn.username,
                table_roots=table_roots,
            )
            self._open_ordinal += 1
            if self._open_ordinal >= self._block_size:
                self._seal_locked()
        return entry

    def seal_open_block(self) -> Optional[int]:
        """Seal the open block if it holds any entries; returns its id.

        Empty open blocks are never sealed, so the chain never contains
        empty blocks.
        """
        with self.sequencer_lock:
            return self._seal_locked()

    def _seal_locked(self) -> Optional[int]:
        """Seal under ``sequencer_lock``: publish (id, count), advance."""
        if self._open_ordinal == 0:
            return None
        started = time.perf_counter()
        sealed_id = self._open_block_id
        count = self._open_ordinal
        with self.queue_lock:
            self._sealed.append((sealed_id, count))
            if self._obs.metrics.enabled:
                self._m.sealed_pending.set(len(self._sealed))
        self._open_block_id = sealed_id + 1
        self._open_ordinal = 0
        if self._obs.metrics.enabled:
            self._m.blocks_sealed.inc()
            self._m.stage_seconds.labels("seal").observe(
                time.perf_counter() - started
            )
        self._ctx.events.emit(
            "ledger", "block.sealed", block_id=sealed_id, transactions=count
        )
        return sealed_id

    def enqueue(
        self,
        entry: TransactionEntry,
        trace: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Queue a durably committed entry (stage 2 → stage 3 handoff).

        Never closes blocks inline: when the entry completes a sealed block
        the registered pipeline callback is invoked so the block builder
        picks it up asynchronously.  ``trace`` is the commit's trace-context
        payload (if tracing is on); it crosses the thread boundary with the
        entry so the builder can attach its spans to the commit's trace.
        """
        ready = False
        with self.queue_lock:
            self._queue.append(entry)
            self._enqueued[entry.block_id] = (
                self._enqueued.get(entry.block_id, 0) + 1
            )
            if self._sealed:
                head_id, head_count = self._sealed[0]
                ready = self._enqueued.get(head_id, 0) >= head_count
            if self._obs.metrics.enabled or self._obs.tracer.enabled:
                self._entry_meta[entry.transaction_id] = (
                    time.monotonic_ns(),
                    trace,
                )
            if self._obs.metrics.enabled:
                self._m.entries_enqueued.inc()
                self._m.queue_depth.set(len(self._queue))
                self._m.queue_oldest_age.set(self._oldest_age_locked())
            self._queue_cv.notify_all()
        if ready and self._sealed_ready_callback is not None:
            self._sealed_ready_callback()

    def _oldest_age_locked(self) -> float:
        """Age (s) of the head queue entry; requires ``queue_lock``."""
        if not self._queue:
            return 0.0
        meta = self._entry_meta.get(self._queue[0].transaction_id)
        if meta is None:
            return 0.0
        return max(0.0, (time.monotonic_ns() - meta[0]) / 1e9)

    def oldest_queue_entry_age(self) -> float:
        """Seconds the oldest still-queued entry has been waiting."""
        with self.queue_lock:
            return self._oldest_age_locked()

    def wait_for_sealed_entries(self, timeout: float) -> bool:
        """Wait until every sealed block has all its entries enqueued.

        Returns False on timeout (an in-flight commit has an assigned slot
        in a sealed block but has not reached post-commit yet).
        """
        deadline = time.monotonic() + timeout
        with self.queue_lock:
            while True:
                incomplete = [
                    block_id
                    for block_id, count in self._sealed
                    if self._enqueued.get(block_id, 0) < count
                ]
                if not incomplete:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._queue_cv.wait(remaining)

    # ------------------------------------------------------------------
    # Queue flushing and block building (stage 3)
    # ------------------------------------------------------------------

    def flush_queue(self) -> int:
        """Batch-insert queued entries into the transactions system table.

        Runs at checkpoint (§3.3.2) and before block closure/verification.
        Returns the number of entries flushed.  Entries enqueued while the
        flush transaction runs are left for the next flush.
        """
        with self.queue_lock:
            snapshot = list(self._queue)
        if not snapshot:
            return 0
        self._faults.fire("ledger.flush_queue", entries=len(snapshot))
        started = time.perf_counter()
        with self.storage_lock, self._obs.tracer.span(
            "ledger.flush_queue", entries=len(snapshot)
        ):
            table = self._transactions_table()
            txn = self._engine.begin(username="ledger_system")
            try:
                table.insert_many(txn, [
                    table.schema.row_from_visible(entry.to_row())
                    for entry in snapshot
                ])
            except Exception:
                self._engine.rollback(txn)
                raise
            self._engine.commit(txn)
        with self.queue_lock:
            del self._queue[: len(snapshot)]
            if self._obs.metrics.enabled:
                self._m.queue_depth.set(len(self._queue))
                self._m.queue_oldest_age.set(self._oldest_age_locked())
        if self._obs.metrics.enabled:
            self._m.entries_flushed.inc(len(snapshot))
            self._m.stage_seconds.labels("flush").observe(
                time.perf_counter() - started
            )
        return len(snapshot)

    def next_ready_block(self) -> Optional[Tuple[int, int]]:
        """The oldest sealed block whose entries are all enqueued, if any."""
        with self.queue_lock:
            if not self._sealed:
                return None
            block_id, count = self._sealed[0]
            if self._enqueued.get(block_id, 0) < count:
                return None
            return block_id, count

    def close_next_ready_block(self) -> Optional[BlockRow]:
        """Close the oldest closable sealed block; None when nothing is ready.

        Takes ``storage_lock`` for the closure; safe to call concurrently
        from the block builder and a draining consumer.
        """
        with self.storage_lock:
            ready = self.next_ready_block()
            if ready is None:
                return None
            block_id, count = ready
            block = self._close_block(block_id, count)
            with self.queue_lock:
                self._sealed.popleft()
                self._enqueued.pop(block_id, None)
                if self._obs.metrics.enabled:
                    self._m.sealed_pending.set(len(self._sealed))
            self._closed_height = block_id
            return block

    def close_open_block(self) -> Optional[BlockRow]:
        """Synchronous path: seal the open block and close everything ready.

        Returns the last block closed, or None if nothing was closable.
        Closing an empty open block is a no-op — no empty blocks are ever
        emitted.  Consumers that must also wait for in-flight concurrent
        commits should use :meth:`repro.core.pipeline.LedgerPipeline.drain`.
        """
        self.seal_open_block()
        last: Optional[BlockRow] = None
        while True:
            block = self.close_next_ready_block()
            if block is None:
                return last
            last = block

    def _close_block(self, block_id: int, expected_count: int) -> BlockRow:
        """Form and persist one sealed block (requires ``storage_lock``).

        Retrieves the block's entries (queue + system table), computes the
        Merkle root over their hashes and the hash of the previous block,
        and persists the block row.
        """
        started = time.perf_counter()
        build_start_ns = time.monotonic_ns()
        tracer = self._obs.tracer
        with tracer.span("block.append", block_id=block_id) as span:
            self.flush_queue()
            entries = self.transactions_in_block(block_id)
            if len(entries) != expected_count:
                raise LedgerError(
                    f"block {block_id} should hold {expected_count} "
                    f"entries but {len(entries)} were found"
                )
            # Close the queue-wait interval for every covered commit (and
            # link the block span to their traces) before the fault point:
            # a kill-mode crash here must leave the waits in the black box.
            self._absorb_entry_meta(span, block_id, entries, build_start_ns)
            self._faults.fire("ledger.block_persist", block_id=block_id)
            merkle_started = time.perf_counter()
            with tracer.span("merkle.root", block_id=block_id):
                tree = MerkleTree(
                    [entry.entry_hash() for entry in entries],
                    metrics=self._ctx.metrics,
                )
            if self._obs.metrics.enabled:
                self._m.stage_seconds.labels("merkle").observe(
                    time.perf_counter() - merkle_started
                )
            persist_started = time.perf_counter()
            with tracer.span("block.persist", block_id=block_id):
                previous_hash = self._previous_hash_for(block_id)
                block = BlockRow(
                    block_id=block_id,
                    previous_block_hash=previous_hash,
                    transactions_root=tree.root(),
                    transaction_count=len(entries),
                    closed_time=self._engine.clock(),
                )
                table = self._blocks_table()
                txn = self._engine.begin(username="ledger_system")
                table.insert(
                    txn, table.schema.row_from_visible(block.to_row())
                )
                self._engine.commit(txn)
            if self._obs.metrics.enabled:
                self._m.stage_seconds.labels("persist").observe(
                    time.perf_counter() - persist_started
                )
            span.set_attribute("transactions", block.transaction_count)
            block_ctx = span.context()
            if block_ctx is not None:
                with self.queue_lock:
                    self._block_traces[block_id] = block_ctx.to_payload()
                    while len(self._block_traces) > _MAX_BLOCK_TRACES:
                        self._block_traces.pop(next(iter(self._block_traces)))
        if self._obs.metrics.enabled:
            self._m.blocks_closed.inc()
            self._m.block_transactions.observe(block.transaction_count)
            elapsed = time.perf_counter() - started
            self._m.block_close_seconds.observe(elapsed)
            self._m.stage_seconds.labels("close").observe(elapsed)
        self._ctx.events.emit(
            "ledger", "block.closed",
            block_id=block.block_id, transactions=block.transaction_count,
        )
        return block

    def _absorb_entry_meta(
        self,
        block_span,
        block_id: int,
        entries: Sequence[TransactionEntry],
        build_start_ns: int,
    ) -> None:
        """Consume queue metadata for a block's entries at closure start.

        For each covered commit this observes ``pipeline_queue_wait_seconds``,
        retroactively records a ``queue.wait`` span *inside the commit's own
        trace* (its parent is the commit-side span the context points at),
        links the ``block.append`` span to the first ``_MAX_BLOCK_LINKS``
        commit traces, and — when a wait crossed ``slow_txn_threshold`` —
        emits a ``txn.slow`` event carrying the worst commit's lineage tree.
        """
        tracer = self._obs.tracer
        metrics_on = self._obs.metrics.enabled
        with self.queue_lock:
            metas = {
                entry.transaction_id: self._entry_meta.pop(
                    entry.transaction_id, None
                )
                for entry in entries
            }
        if not (metrics_on or tracer.enabled):
            return
        slowest: Optional[Tuple[float, int, Optional[TraceContext]]] = None
        slow_count = 0
        links_added = 0
        for entry in entries:
            meta = metas.get(entry.transaction_id)
            if meta is None:
                continue
            enqueue_ns, trace_payload = meta
            wait_seconds = max(0.0, (build_start_ns - enqueue_ns) / 1e9)
            if metrics_on:
                self._m.queue_wait_seconds.observe(wait_seconds)
            context = TraceContext.from_payload(trace_payload)
            if tracer.enabled and context is not None:
                tracer.record_span(
                    "queue.wait",
                    start_ns=enqueue_ns,
                    duration_ns=build_start_ns - enqueue_ns,
                    context=context,
                    tid=entry.transaction_id,
                    block_id=block_id,
                )
                if links_added < _MAX_BLOCK_LINKS:
                    block_span.add_link(context.trace_id, context.span_id)
                    links_added += 1
            if wait_seconds > self.slow_txn_threshold:
                slow_count += 1
                if slowest is None or wait_seconds > slowest[0]:
                    slowest = (wait_seconds, entry.transaction_id, context)
        if slowest is not None and self._obs.events.enabled:
            wait_seconds, tid, context = slowest
            lineage = ""
            if tracer.enabled and context is not None:
                roots = build_lineage_tree(
                    tracer.recorder.spans(), context.trace_id
                )
                lines = render_span_tree(roots).splitlines()
                lineage = "\n".join(lines[:_MAX_SLOW_LINEAGE_LINES])
            self._ctx.events.emit(
                "ledger", "txn.slow",
                tid=tid, block_id=block_id,
                queue_wait_seconds=round(wait_seconds, 6),
                threshold_seconds=self.slow_txn_threshold,
                slow_entries=slow_count,
                lineage=lineage,
            )

    def trace_context_for_block(
        self, block_id: int
    ) -> Optional[TraceContext]:
        """The ``block.append`` trace context for a recently closed block."""
        with self.queue_lock:
            payload = self._block_traces.get(block_id)
        return TraceContext.from_payload(payload)

    def _previous_hash_for(self, block_id: int) -> Optional[bytes]:
        if self._anchor and block_id == self._anchor[0] + 1:
            return self._anchor[1]
        if block_id == 0:
            return None
        previous = self.block(block_id - 1)
        if previous is None:
            raise LedgerError(
                f"cannot close block {block_id}: predecessor is missing"
            )
        return previous.block_hash()

    # ------------------------------------------------------------------
    # Digest generation (§2.2)
    # ------------------------------------------------------------------

    def generate_digest(
        self, database_guid: str, database_create_time: str
    ) -> DatabaseDigest:
        """Produce the Database Digest for the current ledger state.

        Forces the open block to close so the digest covers every committed
        transaction (the paper's frequent-digest design keeps the window of
        uncovered data to seconds).  Concurrent callers should drain the
        pipeline first so in-flight commits are covered too.
        """
        started = time.perf_counter()
        with self.storage_lock, self._obs.tracer.span("digest.generate") as span:
            self.close_open_block()
            latest = self.latest_block()
            if latest is None:
                raise DigestError(
                    "the ledger is empty: no transactions have modified "
                    "ledger tables"
                )
            # Link into the covering block's trace so a commit's lineage
            # extends through to the digest that publishes it.
            block_ctx = self.trace_context_for_block(latest.block_id)
            if block_ctx is not None:
                span.add_link(block_ctx.trace_id, block_ctx.span_id)
                span.set_attribute("block_id", latest.block_id)
            last_commit = self._last_commit_time_in_block(latest.block_id)
            digest = DatabaseDigest(
                database_guid=database_guid,
                database_create_time=database_create_time,
                block_id=latest.block_id,
                block_hash=latest.block_hash(),
                last_transaction_commit_time=last_commit,
                digest_time=self._engine.clock(),
            )
        self._m.digests_generated.inc()
        self._m.digest_generate_seconds.observe(time.perf_counter() - started)
        self._ctx.events.emit(
            "digest", "digest.generated",
            block_id=digest.block_id,
            block_hash=digest.block_hash.hex(),
        )
        return digest

    def _last_commit_time_in_block(self, block_id: int) -> dt.datetime:
        entries = self.transactions_in_block(block_id)
        if not entries:
            raise DigestError(f"block {block_id} holds no transactions")
        return max(entry.commit_time for entry in entries)

    # ------------------------------------------------------------------
    # Queries over the chain
    # ------------------------------------------------------------------

    def block(self, block_id: int) -> Optional[BlockRow]:
        for candidate in self.blocks():
            if candidate.block_id == block_id:
                return candidate
        return None

    def latest_block(self) -> Optional[BlockRow]:
        all_blocks = self.blocks()
        return all_blocks[-1] if all_blocks else None

    def latest_block_id(self) -> int:
        """Highest closed block id; ``first_block_id() - 1`` when none."""
        latest = self.latest_block()
        return latest.block_id if latest else self.first_block_id() - 1

    def blocks(self) -> List[BlockRow]:
        """All closed blocks ordered by block id.

        Reads the heap directly (not through the clustered index) and skips
        undecodable records: a tampered or erased block row must degrade to
        "missing" so verification can report it instead of crashing.
        """
        with self.storage_lock:
            table = self._blocks_table()
            found = []
            for _, row in table.scan():
                try:
                    found.append(
                        BlockRow.from_row(table.schema.visible_values(row))
                    )
                except Exception:
                    continue
        found.sort(key=lambda b: b.block_id)
        return found

    def block_headers(self, from_block: int, to_block: int) -> List[BlockHeader]:
        """Headers for blocks ``from_block..to_block`` (external fork checks)."""
        headers = []
        for block_id in range(from_block, to_block + 1):
            block = self.block(block_id)
            if block is None:
                raise LedgerError(f"block {block_id} is missing from the chain")
            headers.append(BlockHeader.from_block_row(block))
        return headers

    def transaction_entry(self, transaction_id: int) -> Optional[TransactionEntry]:
        with self.queue_lock:
            queued = list(self._queue)
        for entry in queued:
            if entry.transaction_id == transaction_id:
                return entry
        for entry in self._stored_entries():
            if entry.transaction_id == transaction_id:
                return entry
        return None

    def transactions_in_block(self, block_id: int) -> List[TransactionEntry]:
        """Entries of one block, ordered by ordinal (queue included)."""
        entries = [e for e in self._stored_entries() if e.block_id == block_id]
        with self.queue_lock:
            entries.extend(
                e for e in self._queue if e.block_id == block_id
            )
        entries.sort(key=lambda e: e.ordinal)
        return entries

    def all_entries(self) -> List[TransactionEntry]:
        """Every known entry (system table + queue), by transaction id."""
        entries = self._stored_entries()
        with self.queue_lock:
            entries.extend(self._queue)
        entries.sort(key=lambda e: e.transaction_id)
        return entries

    def _stored_entries(self) -> List[TransactionEntry]:
        """Entries from the system table; undecodable rows degrade to missing."""
        with self.storage_lock:
            table = self._transactions_table()
            entries = []
            for _, row in table.scan():
                try:
                    entries.append(
                        TransactionEntry.from_row(table.schema.visible_values(row))
                    )
                except Exception:
                    continue
        return entries

    # ------------------------------------------------------------------
    # Checkpoint / recovery integration
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> Dict[str, int]:
        with self.sequencer_lock:
            return {
                "open_block_id": self._open_block_id,
                "open_ordinal": self._open_ordinal,
            }

    def recover(
        self,
        recovered_payloads: Sequence[dict],
        checkpoint_state: Dict[str, int],
    ) -> None:
        """Reconstruct queue, block counters and sealed blocks after restart.

        ``recovered_payloads`` are the ledger payloads of COMMIT records
        found in the WAL (analysis phase, §3.3.2).  Entries already batched
        into the system table before the crash are deduplicated by
        transaction id.  Blocks that were sealed (fully assigned) but not
        closed before the crash are re-sealed so the block builder finishes
        them.
        """
        known: Set[int] = set()
        table = self._transactions_table()
        tid_ordinal = table.schema.column("transaction_id").ordinal
        for _, row in table.scan():
            known.add(row[tid_ordinal])
        self._queue = []
        # Pre-crash telemetry metadata is meaningless in the new process
        # (monotonic clock restarted, span ids reset) — drop it.
        self._entry_meta = {}
        self._block_traces = {}
        for payload in recovered_payloads:
            entry = TransactionEntry.from_payload(payload)
            if entry.transaction_id not in known:
                self._queue.append(entry)
        self._queue.sort(key=lambda e: (e.block_id, e.ordinal))

        # Recompute the open block and next ordinal from durable state: the
        # open block is the first one past the latest closed block, bumped
        # further if entries (drained or queued) were already assigned past
        # it before the crash.
        latest = self.latest_block()
        latest_closed = (
            latest.block_id if latest is not None else self.first_block_id() - 1
        )
        self._closed_height = latest_closed
        open_block = checkpoint_state.get("open_block_id", 0)
        open_block = max(open_block, latest_closed + 1)
        entry_counts: Dict[int, int] = {}
        for entry in self.all_entries():
            if entry.block_id > latest_closed:
                entry_counts[entry.block_id] = (
                    entry_counts.get(entry.block_id, 0) + 1
                )
            if entry.block_id >= open_block:
                open_block = entry.block_id
        self._open_block_id = open_block
        self._open_ordinal = self._next_ordinal_in(open_block)

        # Rebuild stage-3 bookkeeping: blocks older than the open one were
        # sealed before the crash; the open block is re-sealed if full.
        self._sealed = deque(
            (block_id, entry_counts[block_id])
            for block_id in sorted(entry_counts)
            if block_id < open_block
        )
        self._enqueued = dict(entry_counts)
        if self._open_ordinal >= self._block_size:
            self._seal_locked()
        if self._obs.metrics.enabled:
            self._m.sealed_pending.set(len(self._sealed))
            self._m.queue_depth.set(len(self._queue))

    def _next_ordinal_in(self, block_id: int) -> int:
        """Highest assigned ordinal + 1 within ``block_id`` (table + queue)."""
        entries = self.transactions_in_block(block_id)
        if not entries:
            return 0
        return max(e.ordinal for e in entries) + 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _transactions_table(self) -> Table:
        return self._engine.table(TRANSACTIONS_TABLE)

    def _blocks_table(self) -> Table:
        return self._engine.table(BLOCKS_TABLE)

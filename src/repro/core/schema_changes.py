"""Logical schema changes on ledger tables (§3.5).

* **Adding a nullable column** (§3.5.1) extends the ledger and history
  schemas in place.  Existing row hashes are untouched because NULLs are
  skipped during hashing; existing *records* are untouched because the
  record format tolerates trailing missing columns.

* **Dropping a column** (§3.5.2) renames and hides the column; the physical
  slot and its data survive, so historical hashes keep verifying and the
  data stays auditable through ledger views.

* **Altering a column's type** (§3.5.3) is decomposed exactly as the paper
  prescribes: drop the column, add it back under the original name with the
  new type, and repopulate it through ordinary ledger DML — every converted
  row becomes a new, hashed row version.

Every change is recorded in the ``__ledger_columns_meta`` ledger table so
that schema tampering is itself auditable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine.expressions import eq
from repro.engine.operators import insert_rows, update_rows
from repro.engine.schema import Column
from repro.engine.types import SqlType
from repro.errors import LedgerConfigurationError
from repro.runtime import DEFAULT_CONTEXT


def _events(db):
    return (getattr(db, "context", None) or DEFAULT_CONTEXT).events


def add_column(db, table_name: str, column: Column) -> None:
    """ADD COLUMN on a ledger table (must be nullable, §3.5.1)."""
    if not column.nullable:
        raise LedgerConfigurationError(
            "only nullable columns can be added to a ledger table: existing "
            "rows would otherwise violate NOT NULL without re-hashing"
        )
    table = db.ledger_table(table_name)
    new_schema = table.schema.with_column_added(column)
    db.engine.replace_table_schema(table.table_id, new_schema)
    history_id = table.options.get("history_table_id")
    if history_id is not None:
        history = db.engine.table_by_id(history_id)
        db.engine.replace_table_schema(
            history.table_id, history.schema.with_column_added(column)
        )
    _record_column_added(db, table)
    # The canonical view definition includes the column list; re-register it
    # so the §3.4.2 view check keeps passing.
    db._update_view_registration(f"{table.name}_ledger", table)
    _events(db).emit(
        "schema", "schema.column_added",
        table=table_name, column=column.name,
        type=column.sql_type.render(),
    )


def drop_column(db, table_name: str, column_name: str) -> None:
    """DROP COLUMN: rename + hide, physically retain (§3.5.2)."""
    table = db.ledger_table(table_name)
    target = table.schema.column(column_name)  # raises if missing
    new_schema = table.schema.with_column_dropped(column_name)
    db.engine.replace_table_schema(table.table_id, new_schema)
    history_id = table.options.get("history_table_id")
    if history_id is not None:
        history = db.engine.table_by_id(history_id)
        db.engine.replace_table_schema(
            history.table_id, history.schema.with_column_dropped(column_name)
        )
    dropped_name = new_schema.columns[target.ordinal].name
    _record_column_dropped(db, table, target.ordinal, dropped_name)
    db._update_view_registration(f"{table.name}_ledger", table)
    _events(db).emit(
        "schema", "schema.column_dropped",
        table=table_name, column=column_name, renamed_to=dropped_name,
    )


def alter_column_type(
    db,
    table_name: str,
    column_name: str,
    new_type: SqlType,
    converter: Optional[Callable[[Any], Any]] = None,
) -> None:
    """ALTER COLUMN type via drop + re-add + repopulate (§3.5.3).

    ``converter`` maps each old value to the new type's domain; by default
    values are passed through ``new_type.validate`` unchanged (suitable for
    widenings like INT → BIGINT or VARCHAR(10) → VARCHAR(100)).
    """
    table = db.ledger_table(table_name)
    if not table.schema.primary_key:
        raise LedgerConfigurationError(
            "ALTER COLUMN requires a primary key to re-populate rows"
        )
    convert = converter or (lambda value: value)
    old_ordinal = table.schema.column(column_name).ordinal
    pk_ordinals = table.schema.primary_key_ordinals()
    snapshot = [
        (tuple(row[o] for o in pk_ordinals), row[old_ordinal])
        for _, row in table.scan()
    ]

    drop_column(db, table_name, column_name)
    add_column(db, table_name, Column(column_name, new_type, nullable=True))

    table = db.ledger_table(table_name)  # re-fetch: schema evolved
    txn = db.begin(username="ledger_system")
    try:
        for pk_values, old_value in snapshot:
            new_value = None if old_value is None else convert(old_value)
            condition = None
            for key_name, key_value in zip(table.schema.primary_key, pk_values):
                clause = eq(key_name, key_value)
                condition = clause if condition is None else _and(condition, clause)
            update_rows(txn, table, {column_name: new_value}, condition)
    except Exception:
        db.rollback(txn)
        raise
    db.commit(txn)
    _events(db).emit(
        "schema", "schema.column_altered",
        table=table_name, column=column_name, new_type=new_type.render(),
    )


def _and(left, right):
    from repro.engine.expressions import BinaryOp

    return BinaryOp("AND", left, right)


def _record_column_added(db, table) -> None:
    from repro.core.ledger_database import COLUMNS_META

    column = table.schema.columns[-1]
    meta = db.engine.table(COLUMNS_META)
    txn = db.begin(username="ledger_system")
    insert_rows(
        txn, meta,
        [[table.table_id, column.ordinal, column.name, column.sql_type.render()]],
    )
    db.commit(txn)


def _record_column_dropped(db, table, ordinal: int, dropped_name: str) -> None:
    from repro.core.ledger_database import COLUMNS_META
    from repro.engine.expressions import BinaryOp, ColumnRef, Literal

    meta = db.engine.table(COLUMNS_META)
    condition = BinaryOp(
        "AND",
        eq("table_id", table.table_id),
        BinaryOp("=", ColumnRef("ordinal"), Literal(ordinal)),
    )
    txn = db.begin(username="ledger_system")
    update_rows(txn, meta, {"column_name": dropped_name}, condition)
    db.commit(txn)

"""Database Digests and externally verifiable digest chains (§2.2, §3.3.1).

A Database Digest is a compact JSON document capturing the state of every
ledger table at a point in time: the hash of the latest closed block plus
metadata.  Digests are meant to leave the database — uploaded to immutable
storage, shared with auditors — and come back later as the trusted input to
verification.

Requirement 3 of §3.3.1 — detecting *forks* early — is served by
:func:`verify_digest_chain`: given an older digest, a newer digest, and the
block headers between them, an external party (who cannot see transaction
contents) checks that the new digest's chain extends the old digest's chain.
Block headers expose only hashes and counts, preserving confidentiality.
"""

from __future__ import annotations

import datetime as dt
import json
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.entries import BlockRow
from repro.crypto.hashing import from_hex, to_hex
from repro.errors import DigestError


@dataclass(frozen=True)
class DatabaseDigest:
    """The JSON-exportable digest of the database state (§2.2)."""

    database_guid: str
    database_create_time: str
    block_id: int
    block_hash: bytes
    last_transaction_commit_time: dt.datetime
    digest_time: dt.datetime

    def to_json(self) -> str:
        return json.dumps(
            {
                "database_guid": self.database_guid,
                "database_create_time": self.database_create_time,
                "block_id": self.block_id,
                "hash": to_hex(self.block_hash),
                "last_transaction_commit_time": (
                    self.last_transaction_commit_time.isoformat()
                ),
                "digest_time": self.digest_time.isoformat(),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "DatabaseDigest":
        try:
            data = json.loads(text)
            return cls(
                database_guid=data["database_guid"],
                database_create_time=data["database_create_time"],
                block_id=int(data["block_id"]),
                block_hash=from_hex(data["hash"]),
                last_transaction_commit_time=dt.datetime.fromisoformat(
                    data["last_transaction_commit_time"]
                ),
                digest_time=dt.datetime.fromisoformat(data["digest_time"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise DigestError(f"malformed digest document: {exc}") from exc


@dataclass(frozen=True)
class BlockHeader:
    """Confidentiality-preserving view of one block for external verifiers.

    Carries exactly the fields needed to recompute the block hash — no
    transaction contents, only Merkle roots and counts.
    """

    block_id: int
    previous_block_hash: Optional[bytes]
    transactions_root: bytes
    transaction_count: int
    closed_time: dt.datetime

    @classmethod
    def from_block_row(cls, block: BlockRow) -> "BlockHeader":
        return cls(
            block_id=block.block_id,
            previous_block_hash=block.previous_block_hash,
            transactions_root=block.transactions_root,
            transaction_count=block.transaction_count,
            closed_time=block.closed_time,
        )

    def block_hash(self) -> bytes:
        return self._as_block_row().block_hash()

    def _as_block_row(self) -> BlockRow:
        return BlockRow(
            block_id=self.block_id,
            previous_block_hash=self.previous_block_hash,
            transactions_root=self.transactions_root,
            transaction_count=self.transaction_count,
            closed_time=self.closed_time,
        )

    def to_dict(self) -> dict:
        return {
            "block_id": self.block_id,
            "previous_block_hash": (
                to_hex(self.previous_block_hash)
                if self.previous_block_hash is not None
                else None
            ),
            "transactions_root": to_hex(self.transactions_root),
            "transaction_count": self.transaction_count,
            "closed_time": self.closed_time.isoformat(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BlockHeader":
        return cls(
            block_id=int(data["block_id"]),
            previous_block_hash=(
                from_hex(data["previous_block_hash"])
                if data["previous_block_hash"] is not None
                else None
            ),
            transactions_root=from_hex(data["transactions_root"]),
            transaction_count=int(data["transaction_count"]),
            closed_time=dt.datetime.fromisoformat(data["closed_time"]),
        )


def verify_digest_chain(
    older: DatabaseDigest,
    newer: DatabaseDigest,
    headers: Sequence[BlockHeader],
) -> bool:
    """Check that ``newer`` derives from ``older`` through ``headers``.

    ``headers`` must cover blocks ``older.block_id + 1 .. newer.block_id`` in
    order.  The check walks the chain: each header's ``previous_block_hash``
    must equal the recomputed hash of its predecessor (``older``'s hash for
    the first), and the final recomputed hash must equal ``newer``'s.  A
    False result means the ledger was forked or rewritten between the two
    digests — the early-detection case of §3.3.1.
    """
    if older.database_guid != newer.database_guid:
        raise DigestError("digests come from different databases")
    if newer.block_id < older.block_id:
        return False
    if newer.block_id == older.block_id:
        return newer.block_hash == older.block_hash
    expected_ids = list(range(older.block_id + 1, newer.block_id + 1))
    if [h.block_id for h in headers] != expected_ids:
        return False
    previous_hash = older.block_hash
    running_hash = previous_hash
    for header in headers:
        if header.previous_block_hash != previous_hash:
            return False
        running_hash = header.block_hash()
        previous_hash = running_hash
    return running_hash == newer.block_hash

"""Worker-pool fan-out for ledger verification (§6: parallel scans).

The paper notes verification parallelizes naturally: every block root, every
per-transaction table root, and every chain segment can be recomputed
independently.  This module fans the four scan-heavy invariants out over a
``multiprocessing`` fork pool:

* ``chain``     — contiguous block ranges; each worker recomputes the hashes
                  inside its segment and returns its boundary hashes, which
                  the parent stitches together (each block is hashed once).
* ``block_root``— chunks of block ids, each recomputing its transaction
                  Merkle roots.
* ``table_root``— record-range chunks per relation, each decoding and
                  hashing its slice of row versions into partial per-
                  transaction event maps that the parent merges.
* ``index``     — record-range chunks per (relation, heap-or-index) source,
                  returning keyed leaves the parent merges, sorts, and roots.

Workers are forked *after* the immutable snapshot is fully built, so they
inherit it through copy-on-write memory — nothing is pickled on the way in,
and results crossing the pipe are small tuples of findings and digests.

Fork-only by design: the snapshot holds live schema objects and engine
references that are cheap to inherit but expensive (or impossible) to
pickle.  Where ``fork`` is unavailable (Windows, some macOS configurations)
callers fall back to the serial path; :func:`fork_available` reports which.

The child initializer disables telemetry.  Metric mutators check the
registry's ``enabled`` flag before acquiring any per-metric lock, so a
worker forked while another thread held such a lock can never deadlock —
the disabled flag short-circuits ahead of the lock, and workers have no
business reporting parent-process metrics anyway.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.verify_snapshot import (
    RelationSnapshot,
    VerificationSnapshot,
    record_events,
)
from repro.crypto.merkle import MerkleTree
from repro.errors import StorageError

#: Snapshot inherited by forked workers; set immediately before the pool is
#: created so copy-on-write shares it with every child.
_SNAPSHOT: Optional[VerificationSnapshot] = None

#: Below this many work units per phase a pool costs more than it saves.
MIN_UNITS_PER_WORKER = 64


def fork_available() -> bool:
    """True when fork-based worker pools can run on this platform."""
    return (
        hasattr(os, "fork")
        and "fork" in multiprocessing.get_all_start_methods()
    )


def split_ranges(count: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into up to ``parts`` near-equal (start, end)."""
    if count <= 0:
        return []
    parts = max(1, min(parts, count))
    base, extra = divmod(count, parts)
    ranges = []
    start = 0
    for i in range(parts):
        end = start + base + (1 if i < extra else 0)
        ranges.append((start, end))
        start = end
    return ranges


def _child_init() -> None:
    from repro.obs import OBS

    # The fork inherits the forking thread's span stack: clear it so any
    # span a worker might emit is never parented under a span that lives
    # (and finishes) in the parent process.
    OBS.tracer.reset_thread()
    OBS.disable()
    from repro.obs.profiler import set_thread_role

    set_thread_role("verify-worker")


def _relation(table_index: int, which: str) -> RelationSnapshot:
    table = _SNAPSHOT.tables[table_index]
    return table.base if which == "base" else table.history


# ----------------------------------------------------------------------
# Task functions (run in workers; read _SNAPSHOT, return picklable data)
# ----------------------------------------------------------------------


def chain_segment_task(block_ids: Sequence[int]) -> Dict[str, Any]:
    """Verify the links inside one contiguous run of block ids.

    Returns the first block's *stored* previous-block hash and the last
    block's *recomputed* hash so the parent can stitch consecutive segments
    without hashing any block twice.
    """
    blocks = _SNAPSHOT.blocks
    findings: List[Dict[str, Any]] = []
    previous_hash: Optional[bytes] = None
    for block_id in block_ids:
        block = blocks[block_id]
        if previous_hash is not None and block.previous_block_hash != previous_hash:
            findings.append(
                {
                    "invariant": "chain",
                    "severity": "error",
                    "message": (
                        f"block {block_id} records a previous-block hash "
                        f"that does not match the recomputed hash of block "
                        f"{block_id - 1}"
                    ),
                    "context": {"block_id": block_id},
                }
            )
        previous_hash = block.block_hash()
    return {
        "first_id": block_ids[0],
        "stored_prev": blocks[block_ids[0]].previous_block_hash,
        "last_id": block_ids[-1],
        "last_hash": previous_hash,
        "findings": findings,
        "count": len(block_ids),
    }


def block_root_task(block_ids: Sequence[int]) -> Dict[str, Any]:
    """Recompute the transactions Merkle root for a chunk of blocks."""
    findings: List[Dict[str, Any]] = []
    transactions = 0
    for block_id in block_ids:
        block = _SNAPSHOT.blocks[block_id]
        block_entries = _SNAPSHOT.entries_by_block.get(block_id, [])
        tree = MerkleTree([e.entry_hash() for e in block_entries])
        if tree.root() != block.transactions_root:
            findings.append(
                {
                    "invariant": "block_root",
                    "severity": "error",
                    "message": (
                        f"transactions Merkle root of block {block_id} does "
                        "not match the recomputed root over its entries"
                    ),
                    "context": {"block_id": block_id},
                }
            )
        if block.transaction_count != len(block_entries):
            findings.append(
                {
                    "invariant": "block_root",
                    "severity": "error",
                    "message": (
                        f"block {block_id} records {block.transaction_count} "
                        f"transactions but {len(block_entries)} are present"
                    ),
                    "context": {"block_id": block_id},
                }
            )
        transactions += len(block_entries)
    return {"findings": findings, "transactions": transactions}


def events_task(args: Tuple[int, str, int, int]) -> Dict[str, Any]:
    """Hash one record-range of a relation into partial per-tid events.

    Returns ``{tid: [(seq, leaf), ...]}`` partials the parent merges; the
    expensive decode + canonical serialization + SHA-256 happens here.
    """
    table_index, which, start, end = args
    relation = _relation(table_index, which)
    events: Dict[Optional[int], List[Tuple[int, bytes]]] = {}
    findings: List[Dict[str, Any]] = []
    scanned = 0
    kind = "history table" if relation.is_history else "table"
    for rid, record in relation.records[start:end]:
        try:
            derived, _ = record_events(relation, record)
        except StorageError as exc:
            findings.append(
                {
                    "invariant": "table_root",
                    "severity": "error",
                    "message": (
                        f"row {rid} in {kind} {relation.name!r} failed to "
                        f"decode: {exc}"
                    ),
                    "context": {"table": relation.name},
                }
            )
            continue
        for tid, seq, leaf in derived:
            events.setdefault(tid, []).append((seq, leaf))
            scanned += 1
    return {"events": events, "findings": findings, "scanned": scanned}


def keyed_leaves_task(
    args: Tuple[int, str, Optional[str], int, int]
) -> Dict[str, Any]:
    """Hash one record-range of a heap or index into keyed leaves.

    ``source`` is ``None`` for the relation's own heap, else an index name.
    The parent merges, sorts by clustered key, and compares roots.
    """
    table_index, which, source, start, end = args
    relation = _relation(table_index, which)
    if source is None:
        records = [record for _, record in relation.records[start:end]]
    else:
        records = relation.index_records[source][start:end]
    keyed: List[Tuple[Tuple, bytes]] = []
    findings: List[Dict[str, Any]] = []
    for record in records:
        try:
            derived, order_key = record_events(relation, record)
        except StorageError as exc:
            findings.append(
                {
                    "invariant": "index",
                    "severity": "error",
                    "message": (
                        f"record in {relation.name!r} failed to decode "
                        f"during index verification: {exc}"
                    ),
                    "context": {"table": relation.name},
                }
            )
            continue
        # The leaf over the full row is the last event's leaf for history
        # records (as-deleted form == full row) and the only event's leaf
        # for base records.
        keyed.append((order_key, derived[-1][2]))
    return {"keyed": keyed, "findings": findings}


# ----------------------------------------------------------------------
# Pool wrapper
# ----------------------------------------------------------------------


class VerifyPool:
    """Fork pool bound to one snapshot; also runs tasks inline when serial.

    Create *after* the snapshot (and its derived structures) are complete so
    forked workers inherit a finished, immutable object.  ``run`` preserves
    task order, so parallel and serial execution produce findings in the
    same deterministic order.
    """

    def __init__(self, snapshot: VerificationSnapshot, processes: int) -> None:
        global _SNAPSHOT
        self.processes = max(1, processes)
        self._pool = None
        _SNAPSHOT = snapshot
        if self.processes > 1 and fork_available():
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(
                processes=self.processes, initializer=_child_init
            )

    @property
    def parallel(self) -> bool:
        return self._pool is not None

    def run(self, task, args_list, on_result=None) -> List[Any]:
        """Run ``task`` over ``args_list``; results in submission order."""
        results: List[Any] = []
        if self._pool is not None and len(args_list) > 1:
            iterator = self._pool.imap(task, args_list)
        else:
            iterator = map(task, args_list)
        for result in iterator:
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results

    def close(self) -> None:
        global _SNAPSHOT
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        _SNAPSHOT = None

    def __enter__(self) -> "VerifyPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Group commit: coalesce concurrent commit work into one WAL fsync.

The staged pipeline (PR 3) already decouples *block building* from the
commit path, but each committing session still pays its own storage-lock
acquisition and — in sync mode — its own fsync.  Table locks are NOWAIT
(`repro/engine/locks.py`), so independently-opened transactions touching
the same table would conflict at DML time; the aggregation unit here is
therefore the whole *autocommit work unit* (begin + DML + commit), executed
by a single **leader** on behalf of a batch of waiting sessions:

* callers enqueue a ticket (a zero-argument callable) and block;
* the first ticket's owner becomes the leader, waits a tiny gathering
  window for stragglers, then takes the storage lock ONCE, enters the
  WAL's deferred-sync mode, and runs every member's work unit back to
  back — so a group of N commits costs one lock round-trip and ONE fsync
  instead of N;
* members are acknowledged only **after** the group fsync returns.  A
  crash mid-group (the ``server.fsync_torn_group`` fault point) therefore
  loses whole *unacknowledged* transactions — atomically, never a prefix
  of one — which recovery proves by discarding torn WAL tails whole.

Per-member failures (a lock conflict, a constraint violation) are captured
and re-raised in the owning caller's thread; they do not poison the rest of
the group.  An injected crash, by contrast, fails the *whole* group: every
member sees the error and none was acknowledged, so none may survive
partially.

This is the shape GlassDB calls transaction batching and Blockchain
Relational Database calls block-forming commit; SignLedger's
``core/batch.py`` is the closest sibling in the related set.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, List, Optional

from repro.errors import InjectedCrashError, InjectedFaultError, LedgerError
from repro.faults import FAULTS

FAULTS.register(
    "server.fsync_torn_group",
    "Crash during a group commit's single fsync: every COMMIT frame of the "
    "group reached the OS buffer but the tail is torn mid-flush.  Recovery "
    "must lose whole (unacknowledged) transactions atomically — a torn tail "
    "discards whole frames, never a prefix of one transaction.",
    kind="tear",
)


def _group_metrics(reg):
    class _Families:
        groups = reg.counter(
            "group_commits_total", "Commit groups executed by a leader"
        )
        members = reg.counter(
            "group_commit_members_total",
            "Work units committed through group commit",
        )
        group_size = reg.histogram(
            "group_commit_size", "Members per executed commit group"
        )
        group_seconds = reg.histogram(
            "group_commit_seconds", "Wall time of one group execution"
        )

    return _Families


class _Ticket:
    __slots__ = ("work", "complete", "result", "error")

    def __init__(self, work: Callable[[], Any]) -> None:
        self.work = work
        self.complete = False
        self.result: Any = None
        self.error: Optional[BaseException] = None


class GroupCommitter:
    """Leader/follower commit aggregation for one ``LedgerDatabase``.

    ``max_group`` bounds how many work units one leader executes under a
    single storage-lock hold (keeps worst-case member latency bounded);
    ``max_wait`` is an optional gathering window — with the default 0 the
    leader takes whatever queued while the *previous* group executed, which
    self-tunes: idle systems commit solo with no added latency, loaded
    systems form large groups for free.
    """

    def __init__(self, db, max_group: int = 64, max_wait: float = 0.0) -> None:
        self._db = db
        self._max_group = max(1, int(max_group))
        self._max_wait = max(0.0, float(max_wait))
        self._cv = threading.Condition()
        self._pending: deque[_Ticket] = deque()
        self._leader_active = False
        self._closed = False
        ctx = db.context
        self._faults = ctx.faults
        self._obs = ctx.obs
        self._m = ctx.metrics.handles("group_commit", _group_metrics)
        self._stats_lock = threading.Lock()
        self._groups = 0
        self._members = 0
        self._max_seen = 0
        self._last_size = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, work: Callable[[], Any]) -> Any:
        """Execute ``work`` as part of a commit group; return its result.

        Blocks until the group containing ``work`` is durable (sync mode)
        or applied (async mode).  Exceptions raised by ``work`` re-raise
        here, in the caller's thread.
        """
        ticket = _Ticket(work)
        with self._cv:
            if self._closed:
                raise LedgerError("group committer is closed")
            self._pending.append(ticket)
            self._cv.notify_all()  # a leader in its gathering window wakes
            # Followers wait; when the leader finishes (or dies) everyone
            # wakes, and the first still-incomplete ticket's owner takes
            # over leadership — so a crashed leader never strands a queue.
            while not ticket.complete and self._leader_active:
                self._cv.wait(timeout=0.05)
            if ticket.complete:
                return self._finish(ticket)
            self._leader_active = True
        try:
            self._lead(ticket)
        finally:
            with self._cv:
                self._leader_active = False
                self._cv.notify_all()
        return self._finish(ticket)

    def close(self) -> None:
        """Refuse new work; wake any waiters so shutdown can't hang."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def stats(self) -> dict:
        with self._stats_lock:
            return {
                "groups": self._groups,
                "members": self._members,
                "max_group_size": self._max_seen,
                "last_group_size": self._last_size,
                "mean_group_size": (
                    self._members / self._groups if self._groups else 0.0
                ),
            }

    # ------------------------------------------------------------------
    # Leader path
    # ------------------------------------------------------------------

    def _lead(self, own: _Ticket) -> None:
        while not own.complete:
            if self._max_wait:
                deadline = time.monotonic() + self._max_wait
                with self._cv:
                    while len(self._pending) < self._max_group:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cv.wait(timeout=remaining)
            with self._cv:
                batch: List[_Ticket] = []
                while self._pending and len(batch) < self._max_group:
                    batch.append(self._pending.popleft())
            if not batch:
                return
            self._execute(batch)
            with self._cv:
                self._cv.notify_all()

    def _execute(self, batch: List[_Ticket]) -> None:
        started = time.perf_counter()
        wal = self._db.engine.wal
        try:
            with self._obs.tracer.span("group.commit", size=len(batch)):
                # One storage-lock hold for the whole group (the lock is
                # reentrant, so each member's begin/DML/commit nests for
                # free), one deferred group fsync at context exit.
                with self._db.ledger.storage_lock:
                    with wal.deferred_sync():
                        for index, ticket in enumerate(batch):
                            try:
                                ticket.result = ticket.work()
                            except (InjectedCrashError, InjectedFaultError):
                                raise
                            except Exception as exc:
                                ticket.error = exc
                            if self._faults.triggered(
                                "server.fsync_torn_group",
                                member=index,
                                group=len(batch),
                            ):
                                wal.simulate_torn_tail()
                                raise InjectedCrashError(
                                    "server.fsync_torn_group"
                                )
        except BaseException as exc:
            # The group never reached its durability point: nobody was
            # acknowledged, so everyone fails — atomically.
            for ticket in batch:
                if ticket.error is None:
                    ticket.error = exc
                ticket.complete = True
            raise
        # Acks strictly AFTER the group fsync: an acked-but-lost commit is
        # the durability violation; durable-but-unacked is allowed.
        for ticket in batch:
            ticket.complete = True
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self._groups += 1
            self._members += len(batch)
            self._last_size = len(batch)
            self._max_seen = max(self._max_seen, len(batch))
        if self._obs.metrics.enabled:
            self._m.groups.inc()
            self._m.members.inc(len(batch))
            self._m.group_size.observe(float(len(batch)))
            self._m.group_seconds.observe(elapsed)

    @staticmethod
    def _finish(ticket: _Ticket) -> Any:
        if ticket.error is not None:
            raise ticket.error
        return ticket.result

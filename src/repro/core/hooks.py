"""The ledger's engine hooks: DML hashing, history maintenance, commit entries.

This module is the reproduction of §3.2 ("DML Operations and Row Hashing"):

* every insert/update/delete on a ledger table stamps the hidden system
  columns, serializes the affected row versions canonically, and appends
  their SHA-256 hashes to a **streaming Merkle tree** kept per (transaction,
  ledger table);
* deleted versions are written to the history table with their end
  transaction/sequence populated — transparently to the application;
* at commit, the per-table Merkle roots become the transaction entry that
  rides on the COMMIT WAL record (§3.3.2);
* savepoints snapshot the O(log N) Merkle state so partial rollbacks restore
  it exactly (§3.2.1).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import system_columns as sc
from repro.core.database_ledger import DatabaseLedger
from repro.core.entries import TransactionEntry
from repro.crypto.hashing import hash_leaf, hash_leaves
from repro.crypto.merkle import MerkleHasher, MerkleState
from repro.engine.hooks import EngineHooks
from repro.engine.record import hashable_payload, hashable_payloads
from repro.engine.table import Table
from repro.engine.transaction import Transaction
from repro.errors import AppendOnlyViolationError, LedgerConfigurationError
from repro.runtime import DEFAULT_CONTEXT, LedgerContext

_CONTEXT_KEY = "ledger"


def _hooks_metrics(reg):
    class _Families:
        rows_hashed = reg.counter(
            "ledger_rows_hashed_total",
            "Row versions hashed into per-transaction Merkle trees, "
            "by operation",
            ("op",),
        )
        rows_hashed_by_op = {
            "insert": rows_hashed.labels("insert"),
            "update": rows_hashed.labels("update"),
            "delete": rows_hashed.labels("delete"),
        }
        transactions = reg.counter(
            "ledger_transactions_total",
            "Committed transactions that touched ledger tables",
        )
        tables_per_txn = reg.histogram(
            "ledger_tables_per_transaction",
            "Distinct ledger tables touched per ledger transaction",
            buckets=(1, 2, 3, 5, 8, 13, 21),
        )

    return _Families


class _LedgerTxContext:
    """Per-transaction ledger state: one Merkle hasher per ledger table,
    plus the operation sequence counter (§3.1)."""

    __slots__ = ("hashers", "next_sequence", "_metrics")

    def __init__(self, metrics=None) -> None:
        self.hashers: Dict[int, MerkleHasher] = {}
        self.next_sequence = 0
        self._metrics = metrics

    def hasher_for(self, table_id: int) -> MerkleHasher:
        hasher = self.hashers.get(table_id)
        if hasher is None:
            hasher = MerkleHasher(metrics=self._metrics)
            self.hashers[table_id] = hasher
        return hasher

    def take_sequence(self) -> int:
        sequence = self.next_sequence
        self.next_sequence += 1
        return sequence

    def snapshot(self) -> dict:
        return {
            "next_sequence": self.next_sequence,
            "hashers": {tid: h.snapshot() for tid, h in self.hashers.items()},
        }

    def restore(self, snapshot: dict) -> None:
        self.next_sequence = snapshot["next_sequence"]
        saved: Dict[int, MerkleState] = snapshot["hashers"]
        for table_id in list(self.hashers):
            if table_id in saved:
                self.hashers[table_id].restore(saved[table_id])
            else:
                del self.hashers[table_id]


class LedgerHooks(EngineHooks):
    """EngineHooks implementation wiring the ledger into the engine."""

    def __init__(self, ctx: Optional[LedgerContext] = None) -> None:
        self._ledger: Optional[DatabaseLedger] = None
        self._engine = None
        self._ctx = ctx if ctx is not None else DEFAULT_CONTEXT
        self._obs = self._ctx.obs
        self._m = self._ctx.metrics.handles("ledger.hooks", _hooks_metrics)
        self._suppress_depth = 0
        # Recovery payloads buffered until the ledger layer is bound.
        self._recovered_payloads: List[dict] = []
        self._recovered_state: Dict[str, Any] = {}

    def bind(self, engine, ledger: DatabaseLedger) -> None:
        """Attach the engine and Database Ledger after engine startup."""
        self._engine = engine
        self._ledger = ledger

    # ------------------------------------------------------------------
    # System-operation suppression
    # ------------------------------------------------------------------

    @contextmanager
    def system_operation(self):
        """Temporarily disable ledger semantics (truncation, repairs).

        Regular applications never need this; it models internal operations
        the paper performs below the ledger (e.g. deleting truncated history
        rows, §5.2).
        """
        self._suppress_depth += 1
        try:
            yield
        finally:
            self._suppress_depth -= 1

    @property
    def _suppressed(self) -> bool:
        return self._suppress_depth > 0

    # ------------------------------------------------------------------
    # DML hooks (§3.2)
    # ------------------------------------------------------------------

    def before_insert(
        self, txn: Transaction, table: Table, row: List[Any]
    ) -> List[Any]:
        role = table.options.get("role")
        if self._suppressed or role is None:
            return row
        if role == "history":
            raise LedgerConfigurationError(
                f"history table {table.name!r} cannot be modified directly"
            )
        if role != "ledger":
            return row
        context = self._context(txn)
        sequence = context.take_sequence()
        start_tid, start_seq = sc.start_ordinals(table.schema)
        row = list(row)
        row[start_tid] = txn.tid
        row[start_seq] = sequence
        if sc.has_end_columns(table.schema):
            end_tid, end_seq = sc.end_ordinals(table.schema)
            row[end_tid] = None
            row[end_seq] = None
        validated = list(table.schema.validate_row(row))
        self._append_leaf(txn, context, table, validated, "insert")
        return validated

    def before_insert_many(
        self, txn: Transaction, table: Table, rows: List[List[Any]]
    ) -> List[List[Any]]:
        role = table.options.get("role")
        if self._suppressed or role is None:
            return rows
        if role == "history":
            raise LedgerConfigurationError(
                f"history table {table.name!r} cannot be modified directly"
            )
        if role != "ledger":
            return rows
        context = self._context(txn)
        start_tid, start_seq = sc.start_ordinals(table.schema)
        has_end = sc.has_end_columns(table.schema)
        if has_end:
            end_tid, end_seq = sc.end_ordinals(table.schema)
        tid = txn.tid
        validate = table.schema.validate_row
        validated_rows: List[List[Any]] = []
        for row in rows:
            row = list(row)
            row[start_tid] = tid
            row[start_seq] = context.take_sequence()
            if has_end:
                row[end_tid] = None
                row[end_seq] = None
            validated_rows.append(list(validate(row)))
        self._append_leaves(txn, context, table, validated_rows, "insert")
        return validated_rows

    def before_update(
        self,
        txn: Transaction,
        table: Table,
        old_row: Sequence[Any],
        new_row: List[Any],
    ) -> List[Any]:
        role = table.options.get("role")
        if self._suppressed or role is None:
            return new_row
        if role == "history":
            raise LedgerConfigurationError(
                f"history table {table.name!r} cannot be modified directly"
            )
        if role != "ledger":
            return new_row
        self._require_updateable(table, "UPDATE")
        context = self._context(txn)
        # New version first: stamp, hash, let the engine store it (§3.2).
        sequence = context.take_sequence()
        start_tid, start_seq = sc.start_ordinals(table.schema)
        end_tid, end_seq = sc.end_ordinals(table.schema)
        new_row = list(new_row)
        new_row[start_tid] = txn.tid
        new_row[start_seq] = sequence
        new_row[end_tid] = None
        new_row[end_seq] = None
        validated = list(table.schema.validate_row(new_row))
        self._append_leaf(txn, context, table, validated, "update")
        # Deleted version second: stamp its end columns, hash, move to history.
        self._retire_version(txn, context, table, old_row, "update")
        return validated

    def before_delete(
        self, txn: Transaction, table: Table, old_row: Sequence[Any]
    ) -> None:
        role = table.options.get("role")
        if self._suppressed or role is None:
            return
        if role == "history":
            raise LedgerConfigurationError(
                f"history table {table.name!r} cannot be modified directly"
            )
        if role != "ledger":
            return
        self._require_updateable(table, "DELETE")
        context = self._context(txn)
        self._retire_version(txn, context, table, old_row, "delete")

    def _retire_version(
        self,
        txn: Transaction,
        context: _LedgerTxContext,
        table: Table,
        old_row: Sequence[Any],
        op: str,
    ) -> None:
        """Hash the outgoing version and persist it in the history table."""
        sequence = context.take_sequence()
        end_tid, end_seq = sc.end_ordinals(table.schema)
        retired = list(old_row)
        retired[end_tid] = txn.tid
        retired[end_seq] = sequence
        self._append_leaf(txn, context, table, retired, op)
        history = self._history_table(table)
        history.system_insert(txn, retired)

    def _append_leaf(
        self, txn: Transaction, context: _LedgerTxContext, table: Table,
        row: Sequence[Any], op: str,
    ) -> None:
        tracer = self._obs.tracer
        if tracer.enabled:
            # Join the transaction's trace so hash spans land in the commit
            # lineage even when the statement runs inside an explicit
            # BEGIN...COMMIT (where each statement roots its own tree).
            trace = txn.context.get("trace")
            with tracer.span(
                "ledger.hash", context=trace, table=table.name, op=op
            ):
                payload = hashable_payload(table.schema, row)
                context.hasher_for(table.table_id).append(hash_leaf(payload))
        else:
            payload = hashable_payload(table.schema, row)
            context.hasher_for(table.table_id).append(hash_leaf(payload))
        self._m.rows_hashed_by_op[op].inc()

    def _append_leaves(
        self, txn: Transaction, context: _LedgerTxContext, table: Table,
        rows: Sequence[Sequence[Any]], op: str,
    ) -> None:
        """Batch counterpart of :meth:`_append_leaf`: one tracing span, one
        serialize+hash pass and one metrics observation per statement."""
        if not rows:
            return
        tracer = self._obs.tracer
        if tracer.enabled:
            trace = txn.context.get("trace")
            with tracer.span(
                "ledger.hash", context=trace, table=table.name, op=op,
                rows=len(rows),
            ):
                payloads = hashable_payloads(table.schema, rows)
                leaves = hash_leaves(payloads)
        else:
            payloads = hashable_payloads(table.schema, rows)
            leaves = hash_leaves(payloads)
        context.hasher_for(table.table_id).extend(leaves)
        self._m.rows_hashed_by_op[op].inc(len(rows))

    def _require_updateable(self, table: Table, operation: str) -> None:
        if table.options.get("ledger_type") == "append_only":
            raise AppendOnlyViolationError(
                f"{operation} is not allowed on append-only ledger table "
                f"{table.name!r}"
            )

    def _history_table(self, table: Table) -> Table:
        history_id = table.options.get("history_table_id")
        if history_id is None:
            raise LedgerConfigurationError(
                f"ledger table {table.name!r} has no history table"
            )
        return self._engine.table_by_id(history_id)

    def _context(self, txn: Transaction) -> _LedgerTxContext:
        context = txn.context.get(_CONTEXT_KEY)
        if context is None:
            context = _LedgerTxContext(metrics=self._ctx.metrics)
            txn.context[_CONTEXT_KEY] = context
        return context

    # ------------------------------------------------------------------
    # Commit pipeline (§3.3.2)
    # ------------------------------------------------------------------

    def pre_commit(self, txn: Transaction) -> Optional[Dict[str, Any]]:
        context: Optional[_LedgerTxContext] = txn.context.get(_CONTEXT_KEY)
        if context is None or not context.hashers:
            return None
        assert self._ledger is not None
        with self._obs.tracer.span("ledger.pre_commit", tid=txn.tid):
            table_roots: Tuple[Tuple[int, bytes], ...] = tuple(
                sorted(
                    (tid, hasher.root())
                    for tid, hasher in context.hashers.items()
                )
            )
            entry = self._ledger.assign(txn, table_roots)
        self._m.transactions.inc()
        self._m.tables_per_txn.observe(len(table_roots))
        payload = entry.to_payload()
        # Ride the trace context on the COMMIT payload so post_commit (and
        # through it the block builder) can attach to the commit's trace.
        # The entry's canonical bytes were hashed from the entry itself, and
        # from_payload ignores unknown keys, so this never affects digests.
        trace = self._obs.tracer.capture_context()
        if trace is not None:
            payload["trace"] = trace.to_payload()
        return payload

    def post_commit(self, txn: Transaction, payload: Optional[Dict[str, Any]]) -> None:
        if payload is None:
            return
        assert self._ledger is not None
        self._ledger.enqueue(
            TransactionEntry.from_payload(payload),
            trace=payload.get("trace"),
        )

    # ------------------------------------------------------------------
    # Savepoints (§3.2.1)
    # ------------------------------------------------------------------

    def on_savepoint(self, txn: Transaction, name: str) -> Any:
        context: Optional[_LedgerTxContext] = txn.context.get(_CONTEXT_KEY)
        return context.snapshot() if context is not None else None

    def on_rollback_to_savepoint(
        self, txn: Transaction, name: str, snapshot: Any
    ) -> None:
        context: Optional[_LedgerTxContext] = txn.context.get(_CONTEXT_KEY)
        if snapshot is None:
            # The transaction had touched no ledger table at savepoint time.
            if context is not None:
                txn.context.pop(_CONTEXT_KEY, None)
            return
        if context is None:
            context = self._context(txn)
        context.restore(snapshot)

    # ------------------------------------------------------------------
    # Checkpoint / recovery (§3.3.2)
    # ------------------------------------------------------------------

    def on_checkpoint(self) -> None:
        if self._ledger is not None:
            self._ledger.flush_queue()

    def checkpoint_state(self) -> Dict[str, Any]:
        if self._ledger is None:
            return {}
        return self._ledger.checkpoint_state()

    def on_recovered_commit(self, payload: Dict[str, Any]) -> None:
        self._recovered_payloads.append(payload)

    def on_recovery_complete(self, checkpoint_state: Dict[str, Any]) -> None:
        self._recovered_state = dict(checkpoint_state)

    def take_recovery_data(self) -> Tuple[List[dict], Dict[str, Any]]:
        """Hand buffered recovery data to the ledger layer (once, at open)."""
        payloads, state = self._recovered_payloads, self._recovered_state
        self._recovered_payloads = []
        self._recovered_state = {}
        return payloads, state

"""Staged commit pipeline: asynchronous block building and the drain barrier.

The commit path is split into three stages (SQL Ledger §4.2):

1. **Row hashing** — streaming per-(transaction, table) Merkle leaves,
   computed inline by the ledger hooks while rows are written;
2. **Sequencing** — at commit, the sequencer assigns the transaction its
   ``(block id, ordinal)`` slot and seals the block when it fills — pure
   in-memory bookkeeping, so commits never wait on block formation;
3. **Block building** — this module's background thread drains sealed
   blocks: flushes the entry queue, computes the Merkle root, chains and
   persists the block row.

Consumers that need a *closed* chain tip — digest generation, receipts,
truncation, checkpointing, clean shutdown — call :meth:`LedgerPipeline.drain`
instead of freezing all SQL execution behind one coarse mutex.  ``drain``
waits for in-flight commits to land in the queue, seals the open block
(optionally), and closes every closable block before returning.

The builder thread is event-driven: it sleeps on a condition variable and
is woken by the ledger's sealed-ready callback whenever an ``enqueue``
completes a sealed block.

The builder is *supervised*: an exception crashes the thread (no silent
swallowing), which emits a ``pipeline.builder_crashed`` event and spawns a
replacement after an exponential backoff.  The replacement primes one
wakeup, so sealed blocks stranded by the crash are picked up immediately —
the same sealed-state recovery that runs after a process restart.  A crash
streak beyond the restart cap stops supervision and leaves the pipeline
degraded (visible on ``/healthz``); ``drain()`` still closes blocks inline,
so the ledger remains correct even with a dead builder.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.errors import LedgerError
from repro.faults import FAULTS
from repro.obs.lockstats import InstrumentedLock
from repro.obs.profiler import set_thread_role
from repro.runtime import DEFAULT_CONTEXT, LedgerContext

FAULTS.register(
    "pipeline.builder",
    "Inside the block-builder thread's work loop.  The thread crashes and "
    "the supervisor restarts it with backoff; sealed blocks stranded by "
    "the crash are closed by the replacement (or inline by drain()).",
)


def _pipeline_metrics(reg):
    class _Families:
        builder_cycles = reg.counter(
            "pipeline_builder_cycles_total",
            "Block-builder wake-ups by outcome",
            ("outcome",),
        )
        builder_running = reg.gauge(
            "pipeline_builder_running",
            "1 while the block-builder thread is alive",
        )
        drains = reg.counter(
            "pipeline_drains_total", "Pipeline drain barriers executed"
        )
        stage_seconds = reg.histogram(
            "pipeline_stage_seconds",
            "Wall time per commit-pipeline stage operation "
            "(seal, flush, merkle, persist, close, drain)",
            ("stage",),
        )

    return _Families

#: How long a drain waits for in-flight commits before giving up.  Commits
#: hold the storage lock from sequencing through enqueue, so under the lock
#: hierarchy this only trips if a committing thread died mid-commit.
DEFAULT_DRAIN_TIMEOUT = 30.0

#: Consecutive builder crashes before the supervisor gives up.
DEFAULT_RESTART_CAP = 10

#: First restart delay; doubles per consecutive crash, capped at 1 s.
_BACKOFF_BASE = 0.02
_BACKOFF_MAX = 1.0


class LedgerPipeline:
    """Owns the block-builder thread and the drain barrier for one ledger."""

    def __init__(
        self,
        ledger,
        restart_cap: int = DEFAULT_RESTART_CAP,
        ctx: Optional[LedgerContext] = None,
    ) -> None:
        self._ledger = ledger
        if ctx is None:
            ctx = getattr(ledger, "context", None) or DEFAULT_CONTEXT
        self._ctx = ctx
        self._obs = ctx.obs
        self._faults = ctx.faults
        self._m = ctx.metrics.handles("pipeline", _pipeline_metrics)
        # The condition's mutex is instrumented: waits here are commits
        # notifying a busy builder, holds are builder scheduling decisions.
        self._wakeup = threading.Condition(
            InstrumentedLock(ctx.scoped("pipeline.wakeup"), metrics=ctx.metrics)
        )
        self._pending_wakeups = 0
        self._stop_requested = False
        self._thread: Optional[threading.Thread] = None
        # Serializes concurrent stop() calls (a second close racing the
        # builder join) and tracks in-flight drains so close() can wait for
        # them before tearing the engine down.
        self._stop_lock = threading.RLock()
        self._drain_cv = threading.Condition()
        self._active_drains = 0
        self._drains_disabled = False
        self._blocks_built = 0
        self._builder_errors = 0
        self._drains = 0
        self._last_error: Optional[str] = None
        self._expected_running = False
        self._restart_cap = restart_cap
        self._restarts = 0
        self._restart_streak = 0
        self._supervisor_gave_up = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def expected_running(self) -> bool:
        """True between start() and stop(): the builder *should* be alive."""
        return self._expected_running

    def start(self) -> "LedgerPipeline":
        if self.running:
            return self
        self._stop_requested = False
        self._expected_running = True
        self._supervisor_gave_up = False
        self._restart_streak = 0
        # Prime one wakeup: sealed blocks may already be waiting (recovered
        # after a crash, or sealed while the builder was stopped).
        self._pending_wakeups = 1
        self._ledger.set_sealed_ready_callback(self._notify)
        self._thread = threading.Thread(
            target=self._run, name=self._ctx.scoped("ledger-block-builder"),
            daemon=True,
        )
        self._thread.start()
        if self._obs.metrics.enabled:
            self._m.builder_running.set(1)
        self._ctx.events.emit("ledger", "pipeline.started")
        return self

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop and join the builder thread.

        With ``drain=True`` (clean shutdown) all sealed work is finished
        first; with ``drain=False`` (crash simulation) the thread exits as
        soon as it observes the stop flag, leaving sealed blocks for
        recovery.

        Idempotent and safe to call concurrently: a second stop() (e.g. a
        double close, or a close racing a shutdown path) serializes behind
        the first and returns once the builder is down.
        """
        self._expected_running = False
        with self._stop_lock:
            if self._thread is None:
                return
            if drain and self._thread.is_alive():
                self.drain(seal_open=False)
            with self._wakeup:
                self._stop_requested = True
                self._wakeup.notify_all()
                thread = self._thread
            thread.join(timeout=timeout)
            leaked = thread.is_alive()
            self._thread = None
            self._ledger.set_sealed_ready_callback(None)
            if self._obs.metrics.enabled:
                self._m.builder_running.set(0)
            self._ctx.events.emit(
                "ledger", "pipeline.stopped",
                blocks_built=self._blocks_built, joined=not leaked,
            )
            if leaked:
                raise LedgerError("block-builder thread did not stop in time")

    # ------------------------------------------------------------------
    # The drain barrier
    # ------------------------------------------------------------------

    def drain(
        self, seal_open: bool = True, timeout: float = DEFAULT_DRAIN_TIMEOUT
    ) -> None:
        """Barrier: wait for in-flight commits, close every closable block.

        With ``seal_open=True`` the open block is sealed first (if it holds
        any entries — empty blocks are never emitted), so afterwards every
        committed transaction is covered by a closed block.  With
        ``seal_open=False`` only already-sealed blocks are closed, which
        preserves the open block — verification uses this to keep reporting
        entries of the open block as "uncovered".

        Raises a clean :class:`LedgerError` once :meth:`disable_drains` has
        run (the database is closing) instead of racing the engine teardown.
        """
        started = time.perf_counter()
        with self._drain_cv:
            if self._drains_disabled:
                raise LedgerError(
                    "pipeline is shut down; drain is no longer available"
                )
            self._active_drains += 1
        try:
            with self._obs.tracer.span(
                "pipeline.drain", seal_open=seal_open
            ) as span:
                if seal_open:
                    self._ledger.seal_open_block()
                if not self._ledger.wait_for_sealed_entries(timeout):
                    raise LedgerError(
                        "pipeline drain timed out waiting for in-flight commits"
                    )
                closed = 0
                while self._ledger.close_next_ready_block() is not None:
                    closed += 1
                span.set_attribute("blocks", closed)
        finally:
            with self._drain_cv:
                self._active_drains -= 1
                self._drain_cv.notify_all()
        self._drains += 1
        if self._obs.metrics.enabled:
            self._m.drains.inc()
            self._m.stage_seconds.labels("drain").observe(
                time.perf_counter() - started
            )

    def disable_drains(self, timeout: float = DEFAULT_DRAIN_TIMEOUT) -> bool:
        """Close barrier: refuse new drains, wait out in-flight ones.

        Called by ``LedgerDatabase.close()`` between stopping the builder
        and closing the engine, so a concurrent ``drain()`` (a digest or
        receipt consumer mid-barrier) finishes against a live engine and
        every later one fails with a clean error instead of a torn-down
        file handle.  Returns False if an in-flight drain outlived
        ``timeout`` (close proceeds regardless; that drain was already
        doomed to its own timeout).
        """
        deadline = time.monotonic() + timeout
        with self._drain_cv:
            self._drains_disabled = True
            while self._active_drains:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._drain_cv.wait(timeout=remaining)
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "running": self.running,
            "expected_running": self._expected_running,
            "blocks_built": self._blocks_built,
            "builder_errors": self._builder_errors,
            "restarts": self._restarts,
            "restart_streak": self._restart_streak,
            "supervisor_gave_up": self._supervisor_gave_up,
            "drains": self._drains,
            "sealed_pending": self._ledger.sealed_pending(),
            "queue_depth": self._ledger.pending_entries,
            "queue_oldest_age_seconds": round(
                self._ledger.oldest_queue_entry_age(), 6
            ),
            "last_error": self._last_error,
        }

    # ------------------------------------------------------------------
    # Builder thread and its supervisor
    # ------------------------------------------------------------------

    def _notify(self) -> None:
        with self._wakeup:
            self._pending_wakeups += 1
            self._wakeup.notify_all()

    def _run(self, backoff: float = 0.0) -> None:
        # Restarted builders may reuse a thread-local slot that still holds
        # the crashed incarnation's span stack; start from a clean stack so
        # builder spans never parent under a dead ancestor.
        self._obs.tracer.reset_thread()
        set_thread_role(self._ctx.scoped("block-builder"))
        if backoff:
            time.sleep(backoff)
        try:
            self._loop()
        except Exception as exc:
            self._supervise_crash(exc)

    def _loop(self) -> None:
        while True:
            with self._wakeup:
                while self._pending_wakeups == 0 and not self._stop_requested:
                    self._wakeup.wait()
                if self._stop_requested:
                    return
                self._pending_wakeups = 0
            built = 0
            while not self._stop_requested:
                self._faults.fire("pipeline.builder")
                block = self._ledger.close_next_ready_block()
                if block is None:
                    break
                built += 1
            self._blocks_built += built
            # A full cycle without an exception ends any crash streak.
            self._restart_streak = 0
            if self._obs.metrics.enabled:
                outcome = "built" if built else "idle"
                self._m.builder_cycles.labels(outcome).inc()

    def _supervise_crash(self, exc: Exception) -> None:
        """Runs on the dying builder thread: record, then restart or give up.

        The replacement is created and installed under the wakeup lock so a
        concurrent ``stop()`` either sees the stop flag honoured (no
        restart) or finds the new thread in ``self._thread`` and joins it.
        """
        self._builder_errors += 1
        self._last_error = f"{type(exc).__name__}: {exc}"
        if self._obs.metrics.enabled:
            self._m.builder_cycles.labels("error").inc()
        self._ctx.events.emit(
            "ledger", "pipeline.builder_crashed",
            error=self._last_error, streak=self._restart_streak + 1,
        )
        with self._wakeup:
            if self._stop_requested:
                return
            self._restart_streak += 1
            if self._restart_streak > self._restart_cap:
                self._supervisor_gave_up = True
                if self._obs.metrics.enabled:
                    self._m.builder_running.set(0)
                self._ctx.events.emit(
                    "ledger", "pipeline.builder_gave_up",
                    crashes=self._restart_streak, error=self._last_error,
                )
                return
            self._restarts += 1
            backoff = min(
                _BACKOFF_BASE * (2 ** (self._restart_streak - 1)), _BACKOFF_MAX
            )
            # Re-prime a wakeup: the crash may have stranded sealed blocks
            # mid-closure, exactly like a process restart.
            self._pending_wakeups = max(self._pending_wakeups, 1)
            replacement = threading.Thread(
                target=self._run, args=(backoff,),
                name=self._ctx.scoped("ledger-block-builder"), daemon=True,
            )
            # Install before starting so pipeline.running never flickers
            # False between the crash and the restart.
            self._thread = replacement
            replacement.start()
        self._ctx.events.emit(
            "ledger", "pipeline.builder_restarted",
            attempt=self._restarts, backoff_seconds=round(backoff, 4),
        )

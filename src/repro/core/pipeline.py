"""Staged commit pipeline: asynchronous block building and the drain barrier.

The commit path is split into three stages (SQL Ledger §4.2):

1. **Row hashing** — streaming per-(transaction, table) Merkle leaves,
   computed inline by the ledger hooks while rows are written;
2. **Sequencing** — at commit, the sequencer assigns the transaction its
   ``(block id, ordinal)`` slot and seals the block when it fills — pure
   in-memory bookkeeping, so commits never wait on block formation;
3. **Block building** — this module's background thread drains sealed
   blocks: flushes the entry queue, computes the Merkle root, chains and
   persists the block row.

Consumers that need a *closed* chain tip — digest generation, receipts,
truncation, checkpointing, clean shutdown — call :meth:`LedgerPipeline.drain`
instead of freezing all SQL execution behind one coarse mutex.  ``drain``
waits for in-flight commits to land in the queue, seals the open block
(optionally), and closes every closable block before returning.

The builder thread is event-driven: it sleeps on a condition variable and
is woken by the ledger's sealed-ready callback whenever an ``enqueue``
completes a sealed block.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.errors import LedgerError
from repro.obs import OBS

_BUILDER_CYCLES = OBS.metrics.counter(
    "pipeline_builder_cycles_total",
    "Block-builder wake-ups by outcome",
    ("outcome",),
)
_BUILDER_RUNNING = OBS.metrics.gauge(
    "pipeline_builder_running",
    "1 while the block-builder thread is alive",
)
_DRAINS = OBS.metrics.counter(
    "pipeline_drains_total", "Pipeline drain barriers executed"
)
_STAGE_SECONDS = OBS.metrics.histogram(
    "pipeline_stage_seconds",
    "Wall time per commit-pipeline stage operation "
    "(seal, flush, close, drain)",
    ("stage",),
)

#: How long a drain waits for in-flight commits before giving up.  Commits
#: hold the storage lock from sequencing through enqueue, so under the lock
#: hierarchy this only trips if a committing thread died mid-commit.
DEFAULT_DRAIN_TIMEOUT = 30.0


class LedgerPipeline:
    """Owns the block-builder thread and the drain barrier for one ledger."""

    def __init__(self, ledger) -> None:
        self._ledger = ledger
        self._wakeup = threading.Condition()
        self._pending_wakeups = 0
        self._stop_requested = False
        self._thread: Optional[threading.Thread] = None
        self._blocks_built = 0
        self._builder_errors = 0
        self._drains = 0
        self._last_error: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "LedgerPipeline":
        if self.running:
            return self
        self._stop_requested = False
        # Prime one wakeup: sealed blocks may already be waiting (recovered
        # after a crash, or sealed while the builder was stopped).
        self._pending_wakeups = 1
        self._ledger.set_sealed_ready_callback(self._notify)
        self._thread = threading.Thread(
            target=self._run, name="ledger-block-builder", daemon=True
        )
        self._thread.start()
        if OBS.metrics.enabled:
            _BUILDER_RUNNING.set(1)
        OBS.events.emit("ledger", "pipeline.started")
        return self

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop and join the builder thread.

        With ``drain=True`` (clean shutdown) all sealed work is finished
        first; with ``drain=False`` (crash simulation) the thread exits as
        soon as it observes the stop flag, leaving sealed blocks for
        recovery.
        """
        if self._thread is None:
            return
        if drain and self._thread.is_alive():
            self.drain(seal_open=False)
        with self._wakeup:
            self._stop_requested = True
            self._wakeup.notify_all()
        self._thread.join(timeout=timeout)
        leaked = self._thread.is_alive()
        self._thread = None
        self._ledger.set_sealed_ready_callback(None)
        if OBS.metrics.enabled:
            _BUILDER_RUNNING.set(0)
        OBS.events.emit(
            "ledger", "pipeline.stopped",
            blocks_built=self._blocks_built, joined=not leaked,
        )
        if leaked:
            raise LedgerError("block-builder thread did not stop in time")

    # ------------------------------------------------------------------
    # The drain barrier
    # ------------------------------------------------------------------

    def drain(
        self, seal_open: bool = True, timeout: float = DEFAULT_DRAIN_TIMEOUT
    ) -> None:
        """Barrier: wait for in-flight commits, close every closable block.

        With ``seal_open=True`` the open block is sealed first (if it holds
        any entries — empty blocks are never emitted), so afterwards every
        committed transaction is covered by a closed block.  With
        ``seal_open=False`` only already-sealed blocks are closed, which
        preserves the open block — verification uses this to keep reporting
        entries of the open block as "uncovered".
        """
        started = time.perf_counter()
        if seal_open:
            self._ledger.seal_open_block()
        if not self._ledger.wait_for_sealed_entries(timeout):
            raise LedgerError(
                "pipeline drain timed out waiting for in-flight commits"
            )
        while self._ledger.close_next_ready_block() is not None:
            pass
        self._drains += 1
        if OBS.metrics.enabled:
            _DRAINS.inc()
            _STAGE_SECONDS.labels("drain").observe(
                time.perf_counter() - started
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "running": self.running,
            "blocks_built": self._blocks_built,
            "builder_errors": self._builder_errors,
            "drains": self._drains,
            "sealed_pending": self._ledger.sealed_pending(),
            "queue_depth": self._ledger.pending_entries,
            "last_error": self._last_error,
        }

    # ------------------------------------------------------------------
    # Builder thread
    # ------------------------------------------------------------------

    def _notify(self) -> None:
        with self._wakeup:
            self._pending_wakeups += 1
            self._wakeup.notify_all()

    def _run(self) -> None:
        while True:
            with self._wakeup:
                while self._pending_wakeups == 0 and not self._stop_requested:
                    self._wakeup.wait()
                if self._stop_requested:
                    return
                self._pending_wakeups = 0
            try:
                built = 0
                while not self._stop_requested:
                    block = self._ledger.close_next_ready_block()
                    if block is None:
                        break
                    built += 1
                self._blocks_built += built
                if OBS.metrics.enabled:
                    outcome = "built" if built else "idle"
                    _BUILDER_CYCLES.labels(outcome).inc()
            except Exception as exc:  # keep the builder alive; surface it
                self._builder_errors += 1
                self._last_error = f"{type(exc).__name__}: {exc}"
                if OBS.metrics.enabled:
                    _BUILDER_CYCLES.labels("error").inc()
                OBS.events.emit(
                    "ledger", "pipeline.builder_error", error=self._last_error
                )

"""Sharded ledger partitions under one Merkle super-chain.

A single :class:`~repro.core.ledger_database.LedgerDatabase` serializes every
commit through one staged pipeline.  :class:`ShardedLedger` runs **N
independent partitions** — each a complete engine + Database Ledger with its
own WAL, staged pipeline, block chain, digests and verification — and routes
every statement to exactly one of them by table name:

* explicit ``table_map`` entries win (co-locate tables that must share a
  transaction);
* everything else hashes: ``zlib.crc32(table_name) % shards``.

Transactions never span shards: a shard *is* the unit of serialization, so
cross-shard writes would need a second commit protocol the paper does not
have.  The routing layer enforces this by construction — every DML/SQL call
resolves one table, hence one shard.

Observability and fault isolation ride on :mod:`repro.runtime`: each shard
gets a :class:`~repro.runtime.LedgerContext` named ``s0`` … ``s{N-1}`` with
its **own** :class:`~repro.faults.registry.FaultRegistry`, so lock names and
thread roles carry ``@s<i>`` suffixes, events carry ``shard=s<i>``, and
arming a crash fault for one shard leaves its neighbours running.

The **super-chain** (:mod:`repro.core.super_chain`) is the ledger-of-ledgers:
:meth:`ShardedLedger.seal_super_block` drains every shard, collects the
chain tips and seals them under one Merkle root — the single value worth
anchoring externally.  :meth:`ShardedLedger.verify` fans every shard through
the existing verification stack and then re-derives the super-root from the
live chains, which is what catches the attack per-shard verification cannot:
a whole shard chain rewritten self-consistently, digests and all.
:class:`SuperChainMonitor` runs that cross-check continuously and emits
``tamper.detected`` (with the guilty ``shard=``) within one cycle.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.ledger_database import LedgerDatabase
from repro.core.super_chain import (
    EMPTY_TIP_BLOCK_ID,
    EMPTY_TIP_HASH,
    ShardTip,
    SuperChain,
    super_root,
)
from repro.errors import DigestError, LedgerConfigurationError
from repro.faults.registry import FaultRegistry
from repro.obs import OBS
from repro.runtime import (
    LedgerContext,
    claim_instance_name,
    release_instance_name,
)

META_FILE = "sharded.json"
SUPER_CHAIN_FILE = "super_chain.jsonl"

#: Tables a FROM/INTO/UPDATE/TABLE clause can be extracted from; the first
#: matching pattern routes the statement.
_STATEMENT_TABLE_PATTERNS = (
    re.compile(r"\bINTO\s+([A-Za-z_][A-Za-z0-9_]*)", re.IGNORECASE),
    re.compile(r"^\s*UPDATE\s+([A-Za-z_][A-Za-z0-9_]*)", re.IGNORECASE),
    re.compile(r"\bFROM\s+([A-Za-z_][A-Za-z0-9_]*)", re.IGNORECASE),
    re.compile(r"\bTABLE\s+([A-Za-z_][A-Za-z0-9_]*)", re.IGNORECASE),
)


def shard_name(index: int) -> str:
    return f"s{index}"


def hash_shard_index(table_name: str, shard_count: int) -> int:
    """Stable hash routing: crc32 of the table name modulo the shard count."""
    return zlib.crc32(table_name.encode("utf-8")) % shard_count


def _super_metrics(reg):
    class _Families:
        sealed = reg.counter(
            "super_blocks_sealed_total",
            "Super-blocks sealed over per-shard chain tips",
        )
        height = reg.gauge(
            "super_chain_height", "Id of the latest sealed super-block"
        )
        mismatches = reg.counter(
            "super_root_mismatch_total",
            "Super-root cross-check failures, by guilty shard",
            ("shard",),
        )
        cycles = reg.counter(
            "super_monitor_cycles_total",
            "Super-chain monitor cycles, by outcome",
            ("outcome",),
        )

    return _Families


class ShardedVerificationReport:
    """Outcome of a cross-shard :meth:`ShardedLedger.verify` run."""

    def __init__(
        self,
        per_shard: Dict[str, Any],
        super_chain_findings: List[str],
        root_check: Dict[str, Any],
    ) -> None:
        #: shard name -> per-shard VerificationReport (None for empty shards).
        self.per_shard = per_shard
        self.super_chain_findings = super_chain_findings
        self.root_check = root_check

    @property
    def ok(self) -> bool:
        shards_ok = all(
            report is None or report.ok for report in self.per_shard.values()
        )
        return (
            shards_ok
            and not self.super_chain_findings
            and self.root_check.get("ok", True)
        )

    def failed_shards(self) -> List[str]:
        out = [
            name
            for name, report in self.per_shard.items()
            if report is not None and not report.ok
        ]
        for name, entry in self.root_check.get("per_shard", {}).items():
            if not entry["ok"] and name not in out:
                out.append(name)
        return sorted(out)

    def summary(self) -> str:
        verified = sum(1 for r in self.per_shard.values() if r is not None)
        lines = [
            f"cross-shard verification {'PASSED' if self.ok else 'FAILED'}: "
            f"{verified}/{len(self.per_shard)} shards verified, "
            f"super-root "
            + (
                "re-derived and matched"
                if self.root_check.get("ok", True)
                else "MISMATCH"
            )
        ]
        for name in sorted(self.per_shard):
            report = self.per_shard[name]
            if report is None:
                lines.append(f"  {name}: empty (nothing to verify)")
            elif report.ok:
                lines.append(f"  {name}: ok")
            else:
                lines.append(f"  {name}: FAILED — {report.summary()}")
        for finding in self.super_chain_findings:
            lines.append(f"  super-chain: {finding}")
        for name, entry in sorted(
            self.root_check.get("per_shard", {}).items()
        ):
            if not entry["ok"]:
                lines.append(
                    f"  super-root: shard {name} tip no longer matches the "
                    f"sealed super-block (chain rewritten?)"
                )
        return "\n".join(lines)


class ShardedLedger:
    """N ledger partitions behind one router and one super-chain."""

    def __init__(
        self,
        path: str,
        shards: List[LedgerDatabase],
        table_map: Dict[str, int],
        super_chain: SuperChain,
        clock: Callable[[], Any],
    ) -> None:
        self.path = path
        self.shards = shards
        self.table_map = dict(table_map)
        self.super_chain = super_chain
        self._clock = clock
        self._seal_lock = threading.Lock()
        self._super_monitor: Optional[SuperChainMonitor] = None
        self._obs_server = None
        self._sessions: Dict[int, Any] = {}
        self._m = OBS.metrics.handles("super_chain", _super_metrics)
        self._m.height.set(super_chain.height)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        shards: Optional[int] = None,
        table_map: Optional[Dict[str, int]] = None,
        block_size: Optional[int] = None,
        clock: Optional[Callable[[], Any]] = None,
        sync: bool = False,
    ) -> "ShardedLedger":
        """Open (creating or recovering) a sharded deployment at ``path``.

        The shard count and explicit table map are fixed at creation and
        persisted in ``sharded.json``; reopening with a conflicting
        ``shards=`` raises rather than silently re-routing tables.
        """
        meta_path = os.path.join(path, META_FILE)
        if os.path.exists(meta_path):
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
            if shards is not None and shards != meta["shards"]:
                raise LedgerConfigurationError(
                    f"deployment at {path!r} has {meta['shards']} shards; "
                    f"cannot reopen with shards={shards} (routing would "
                    "change and strand rows)"
                )
            shard_count = int(meta["shards"])
            stored_map = {
                name: int(index)
                for name, index in meta.get("table_map", {}).items()
            }
        else:
            shard_count = shards if shards is not None else 2
            if shard_count < 1:
                raise LedgerConfigurationError(
                    "a sharded deployment needs at least 1 shard"
                )
            stored_map = dict(table_map or {})
            for name, index in stored_map.items():
                if not 0 <= index < shard_count:
                    raise LedgerConfigurationError(
                        f"table_map routes {name!r} to shard {index}, but "
                        f"only shards 0..{shard_count - 1} exist"
                    )
            os.makedirs(path, exist_ok=True)
            with open(meta_path, "w", encoding="utf-8") as fh:
                json.dump(
                    {"version": 1, "shards": shard_count,
                     "table_map": stored_map},
                    fh, indent=2, sort_keys=True,
                )
                fh.write("\n")

        opened: List[LedgerDatabase] = []
        try:
            for index in range(shard_count):
                name = shard_name(index)
                claim_instance_name(name)
                faults = FaultRegistry()
                ctx = LedgerContext(name=name, faults=faults)
                # Route this shard's fault.injected events through the
                # scoped log so they carry shard= like everything else.
                faults.set_events(ctx.events)
                try:
                    db = LedgerDatabase.open(
                        os.path.join(path, f"shard-{index:02d}"),
                        block_size=block_size,
                        clock=clock,
                        sync=sync,
                        ctx=ctx,
                    )
                except Exception:
                    release_instance_name(name)
                    raise
                opened.append(db)
        except Exception:
            for db in opened:
                db.close()
                release_instance_name(db.context.name)
            raise

        chain = SuperChain(os.path.join(path, SUPER_CHAIN_FILE))
        effective_clock = clock or opened[0].engine.clock
        return cls(path, opened, stored_map, chain, effective_clock)

    def close(self) -> None:
        self.stop_super_monitor()
        self.stop_obs_server()
        for db in self.shards:
            db.close()
            release_instance_name(db.context.name)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard(self, index: int) -> LedgerDatabase:
        return self.shards[index]

    def shard_names(self) -> List[str]:
        return [db.context.name for db in self.shards]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_index_for_table(self, table_name: str) -> int:
        explicit = self.table_map.get(table_name)
        if explicit is not None:
            return explicit
        return hash_shard_index(table_name, self.shard_count)

    def route(self, table_name: str) -> LedgerDatabase:
        """The shard owning ``table_name``."""
        return self.shards[self.shard_index_for_table(table_name)]

    def routing_table(self) -> Dict[str, Any]:
        """Current table -> shard assignments, for introspection."""
        assignments: Dict[str, Any] = {}
        for index, db in enumerate(self.shards):
            for table in db.ledger_tables():
                assignments[table.name] = {
                    "shard": db.context.name,
                    "index": index,
                    "explicit": table.name in self.table_map,
                }
        return assignments

    @staticmethod
    def table_in_statement(statement: str) -> Optional[str]:
        for pattern in _STATEMENT_TABLE_PATTERNS:
            match = pattern.search(statement)
            if match:
                return match.group(1)
        return None

    def sql(self, statement: str):
        """Route one SQL statement to the owning shard and execute it.

        Statement-level routing only: BEGIN/COMMIT affect a single shard's
        session, so multi-statement transactions must stick to tables of one
        shard.  Statements naming no table cannot be routed.
        """
        table = self.table_in_statement(statement)
        if table is None:
            raise LedgerConfigurationError(
                "cannot route statement to a shard: no table name found in "
                f"{statement!r}"
            )
        index = self.shard_index_for_table(table)
        session = self._sessions.get(index)
        if session is None:
            from repro.sql.session import SqlSession

            session = SqlSession(self.shards[index])
            self._sessions[index] = session
        return session.execute(statement)

    # -- direct-API conveniences (single-shard autocommit) -----------------

    def create_ledger_table(self, schema, ledger_type: str = "updateable"):
        return self.route(schema.name).create_ledger_table(
            schema, ledger_type=ledger_type
        )

    def insert(self, table_name: str, rows: Sequence[Sequence[Any]],
               username: str = "app_user") -> int:
        db = self.route(table_name)
        # Serialize whole autocommits per shard, exactly like SqlSession:
        # the storage engine's table locks are conflict-detecting, not
        # blocking, so concurrent writers must queue here.
        with db.ledger_lock:
            txn = db.begin(username=username)
            try:
                count = db.insert(txn, table_name, rows)
            except Exception:
                db.rollback(txn)
                raise
            db.commit(txn)
        return count

    def select(self, table_name: str, where: Any = None) -> List[Dict[str, Any]]:
        return self.route(table_name).select(table_name, where=where)

    # ------------------------------------------------------------------
    # Super-chain sealing
    # ------------------------------------------------------------------

    def current_tips(self, drain: bool = True) -> List[ShardTip]:
        """Every shard's chain tip, optionally after a sealing drain."""
        tips: List[ShardTip] = []
        for db in self.shards:
            if drain:
                db.pipeline.drain(seal_open=True)
            latest = db.ledger.latest_block()
            if latest is None:
                tips.append(
                    ShardTip(db.context.name, EMPTY_TIP_BLOCK_ID,
                             EMPTY_TIP_HASH)
                )
            else:
                tips.append(
                    ShardTip(db.context.name, latest.block_id,
                             latest.block_hash())
                )
        return tips

    def seal_super_block(self):
        """Drain every shard and seal their tips into a new super-block.

        Returns the sealed :class:`~repro.core.super_chain.SuperBlock`; its
        ``super_hash()`` is the single value to anchor externally.
        """
        with self._seal_lock:
            tips = self.current_tips(drain=True)
            sealed_time = self._clock()
            block = self.super_chain.seal(
                tips,
                sealed_time.isoformat()
                if hasattr(sealed_time, "isoformat") else str(sealed_time),
            )
        self._m.sealed.inc()
        self._m.height.set(block.super_id)
        OBS.events.emit(
            "super_chain", "super_block.sealed",
            super_id=block.super_id,
            merkle_root=block.merkle_root.hex(),
            shards=len(tips),
        )
        return block

    def check_super_roots(self) -> Dict[str, Any]:
        """Cross-check the latest sealed super-block against live chains.

        For every sealed tip, the shard's *stored* block at that id must
        still hash to the sealed value; the super-root is then re-derived
        from the stored blocks and compared to the sealed Merkle root.  A
        shard whose chain was rewritten — even self-consistently, with its
        digests regenerated — fails this check, because the sealed tips are
        outside its reach.
        """
        latest = self.super_chain.latest()
        if latest is None:
            return {"checked": False, "ok": True, "per_shard": {}}
        per_shard: Dict[str, Dict[str, Any]] = {}
        derived_tips: List[ShardTip] = []
        by_name = {db.context.name: db for db in self.shards}
        for tip in latest.tips:
            db = by_name.get(tip.shard)
            entry: Dict[str, Any] = {
                "block_id": tip.block_id,
                "expected": tip.block_hash.hex(),
            }
            if db is None:
                entry.update(ok=False, actual=None,
                             detail="shard missing from deployment")
                derived_tips.append(
                    ShardTip(tip.shard, tip.block_id, EMPTY_TIP_HASH)
                )
            elif tip.block_id == EMPTY_TIP_BLOCK_ID:
                # Sealed before the shard closed any block: nothing the
                # adversary could have rewritten yet.
                entry.update(ok=True, actual=None)
                derived_tips.append(tip)
            else:
                with db.ledger.storage_lock:
                    stored = db.ledger.block(tip.block_id)
                if stored is None:
                    entry.update(ok=False, actual=None,
                                 detail="sealed tip block no longer exists")
                    derived_tips.append(
                        ShardTip(tip.shard, tip.block_id, EMPTY_TIP_HASH)
                    )
                else:
                    actual = stored.block_hash()
                    entry.update(
                        ok=actual == tip.block_hash, actual=actual.hex()
                    )
                    derived_tips.append(
                        ShardTip(tip.shard, tip.block_id, actual)
                    )
            per_shard[tip.shard] = entry
        derived = super_root(derived_tips)
        root_match = derived == latest.merkle_root
        return {
            "checked": True,
            "super_id": latest.super_id,
            "ok": root_match and all(e["ok"] for e in per_shard.values()),
            "root_match": root_match,
            "recorded_root": latest.merkle_root.hex(),
            "derived_root": derived.hex(),
            "per_shard": per_shard,
        }

    # ------------------------------------------------------------------
    # Cross-shard verification
    # ------------------------------------------------------------------

    def verify(self, parallelism: int = 1) -> ShardedVerificationReport:
        """Verify every shard, then the super-chain, then the super-root."""
        per_shard: Dict[str, Any] = {}
        for db in self.shards:
            try:
                digest = db.generate_digest()
            except DigestError:
                per_shard[db.context.name] = None  # empty shard
                continue
            per_shard[db.context.name] = db.verify(
                [digest], parallelism=parallelism
            )
        return ShardedVerificationReport(
            per_shard=per_shard,
            super_chain_findings=self.super_chain.verify_chain(),
            root_check=self.check_super_roots(),
        )

    # ------------------------------------------------------------------
    # Monitoring and observability
    # ------------------------------------------------------------------

    @property
    def super_monitor(self) -> Optional["SuperChainMonitor"]:
        return self._super_monitor

    def start_super_monitor(
        self, interval: float = 5.0, seal_each_cycle: bool = True
    ) -> "SuperChainMonitor":
        if self._super_monitor is not None and self._super_monitor.running:
            return self._super_monitor
        self._super_monitor = SuperChainMonitor(
            self, interval=interval, seal_each_cycle=seal_each_cycle
        )
        self._super_monitor.start()
        return self._super_monitor

    def stop_super_monitor(self) -> None:
        if self._super_monitor is not None:
            self._super_monitor.stop()
            self._super_monitor = None

    def start_monitors(self, interval: float = 5.0, **kwargs) -> None:
        """Start a per-shard continuous verifier on every shard."""
        for db in self.shards:
            db.start_monitor(interval=interval, **kwargs)

    def start_obs_server(self, port: int = 0, host: str = "127.0.0.1"):
        """HTTP endpoint with /shards and shard-aware /healthz."""
        if self._obs_server is not None and self._obs_server.running:
            return self._obs_server
        from repro.obs.server import ObservabilityServer

        self._obs_server = ObservabilityServer(
            sharded=self, host=host, port=port
        )
        self._obs_server.start()
        return self._obs_server

    def stop_obs_server(self) -> None:
        if self._obs_server is not None:
            self._obs_server.stop()
            self._obs_server = None

    def health(self) -> Dict[str, Any]:
        """Per-shard health verdicts plus the super-chain cross-check.

        A shard is ``tamper-detected`` when its own monitor has failed a
        cycle *or* the super-root cross-check implicates it; healthy shards
        stay ``ok`` even while a neighbour is flagged.
        """
        monitor = self._super_monitor
        if monitor is not None and monitor.cycles > 0:
            root_check = monitor.last_root_check
        else:
            root_check = self.check_super_roots()
        per_root = root_check.get("per_shard", {})
        shards: Dict[str, Any] = {}
        for db in self.shards:
            name = db.context.name
            entry: Dict[str, Any] = {}
            own = db.monitor
            super_ok = per_root.get(name, {}).get("ok", True)
            own_healthy = own.healthy if own is not None else True
            if not super_ok:
                entry["status"] = "tamper-detected"
                entry["source"] = "super_chain"
            elif not own_healthy:
                entry["status"] = "tamper-detected"
                entry["source"] = "shard_monitor"
            else:
                entry["status"] = "ok"
            entry["monitor"] = "running" if own and own.running else "none"
            entry["super_root"] = "ok" if super_ok else "mismatch"
            shards[name] = entry
        overall = (
            "tamper-detected"
            if any(s["status"] != "ok" for s in shards.values())
            else "ok"
        )
        return {
            "status": overall,
            "shards": shards,
            "super_chain_height": self.super_chain.height,
        }

    def status(self) -> Dict[str, Any]:
        """Per-shard chain/queue/lag summary for \\shards and /shards."""
        latest = self.super_chain.latest()
        shards: Dict[str, Any] = {}
        for db in self.shards:
            name = db.context.name
            ledger = db.ledger
            height = ledger.closed_block_height
            sealed_tip = None
            if latest is not None:
                tip = latest.tip_for(name)
                if tip is not None and tip.block_id != EMPTY_TIP_BLOCK_ID:
                    sealed_tip = tip.block_id
            shards[name] = {
                "chain_height": height,
                "open_block_id": ledger.open_block_id,
                "queue_depth": ledger.pending_entries,
                "sealed_blocks_pending": ledger.sealed_pending(),
                # Closed blocks not yet covered by a sealed super-block:
                # the shard's exposure window if only super-hashes are
                # anchored externally.
                "digest_lag": (
                    height - sealed_tip if sealed_tip is not None
                    else height + 1
                ),
            }
        return {
            "shard_count": self.shard_count,
            "shards": shards,
            "super_chain_height": self.super_chain.height,
            "table_map": dict(self.table_map),
        }

    def __repr__(self) -> str:
        return (
            f"<ShardedLedger {self.path!r} shards={self.shard_count} "
            f"super_height={self.super_chain.height}>"
        )


class SuperChainMonitor:
    """Background thread cross-checking shard chains against the super-chain.

    Each cycle re-derives the super-root from the live shard chains and
    compares it to the latest sealed super-block (see
    :meth:`ShardedLedger.check_super_roots`).  On mismatch it emits
    ``tamper.detected`` carrying the guilty ``shard=`` and counts
    ``super_root_mismatch_total``; healthy cycles optionally seal a fresh
    super-block so the anchor keeps up with the chains.
    """

    def __init__(
        self,
        sharded: ShardedLedger,
        interval: float = 5.0,
        seal_each_cycle: bool = True,
    ) -> None:
        self._sharded = sharded
        self.interval = interval
        self.seal_each_cycle = seal_each_cycle
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._cycle_done = threading.Condition()
        self._m = OBS.metrics.handles("super_chain", _super_metrics)
        self.cycles = 0
        self.failures = 0
        self.last_verdict = "unknown"
        self.last_root_check: Dict[str, Any] = {}
        self.last_error: Optional[str] = None
        self._flagged: set = set()
        OBS.events.enable()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def healthy(self) -> bool:
        return self.last_verdict != "failed"

    def start(self) -> "SuperChainMonitor":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="super-chain-monitor", daemon=True
        )
        self._thread.start()
        OBS.events.emit(
            "super_chain", "super_monitor.started", interval=self.interval
        )
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        from repro.obs.profiler import set_thread_role

        OBS.tracer.reset_thread()
        set_thread_role("super-chain-monitor")
        while not self._stop.is_set():
            self.run_cycle()
            self._stop.wait(self.interval)

    def run_cycle(self) -> str:
        """One cross-check (+ optional seal) pass; returns the outcome."""
        try:
            outcome = self._cycle()
        except Exception as exc:  # the watchdog itself must not die
            outcome = "error"
            self.last_error = f"{type(exc).__name__}: {exc}"
        self.cycles += 1
        self._m.cycles.labels(outcome).inc()
        with self._cycle_done:
            self._cycle_done.notify_all()
        return outcome

    def _cycle(self) -> str:
        check = self._sharded.check_super_roots()
        self.last_root_check = check
        if not check.get("checked"):
            if self.seal_each_cycle:
                self._sharded.seal_super_block()
                return "sealed"
            return "idle"
        if not check["ok"]:
            self.failures += 1
            self.last_verdict = "failed"
            guilty = [
                name
                for name, entry in check["per_shard"].items()
                if not entry["ok"]
            ]
            for name in guilty:
                self._m.mismatches.labels(name).inc()
                if name not in self._flagged:
                    self._flagged.add(name)
                OBS.events.emit(
                    "tamper", "tamper.detected",
                    source="super_chain", shard=name,
                    super_id=check["super_id"],
                    expected=check["per_shard"][name]["expected"],
                    actual=check["per_shard"][name].get("actual"),
                )
            return "failed"
        self.last_verdict = "passed"
        if self.seal_each_cycle:
            tips_now = self._sharded.current_tips(drain=False)
            latest = self._sharded.super_chain.latest()
            if latest is None or super_root(tips_now) != latest.merkle_root:
                self._sharded.seal_super_block()
                return "sealed"
        return "passed"

    def status(self) -> Dict[str, Any]:
        return {
            "running": self.running,
            "healthy": self.healthy,
            "interval": self.interval,
            "cycles": self.cycles,
            "failures": self.failures,
            "last_verdict": self.last_verdict,
            "super_chain_height": self._sharded.super_chain.height,
            "flagged_shards": sorted(self._flagged),
            "last_error": self.last_error,
        }

    def wait_for_cycle(self, timeout: float = 10.0) -> bool:
        with self._cycle_done:
            return self._cycle_done.wait(timeout)

    def wait_for(
        self, predicate: Callable[[], bool], timeout: float = 10.0
    ) -> bool:
        deadline = time.monotonic() + timeout
        if predicate():
            return True
        with self._cycle_done:
            while time.monotonic() < deadline:
                self._cycle_done.wait(min(0.25, timeout))
                if predicate():
                    return True
        return predicate()

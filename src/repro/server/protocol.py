"""Wire protocol for the ledger server: length-prefixed JSON frames.

Matches the framing idiom of ``repro/obs/server.py`` but over a raw TCP
socket: every message — request or response — is ``uint32 length`` (big
endian) followed by a UTF-8 JSON document.  Requests carry an ``op`` plus
op-specific fields; responses are either::

    {"ok": true,  "seq": <echo>, "result": {...}}
    {"ok": false, "seq": <echo>, "error": {"code", "message", "retryable"}}

``seq`` is an opaque client-chosen value echoed back verbatim (the client
library uses it to detect protocol desync on a reused connection).

Error codes are the server's overload-policy vocabulary.  ``retryable``
tells a well-behaved client whether backing off and retrying (with the
same ``txn_uuid``!) can succeed:

* ``SERVER_BUSY``      — admission queue full; the request was shed, not
  queued.  Retryable: the queue is bounded precisely so that load spikes
  turn into fast rejects instead of unbounded latency.
* ``DEADLINE_EXCEEDED``— the request's propagated deadline expired before
  (or while) the server could finish it.  Retryable with a fresh deadline.
* ``DEGRADED``         — the block builder or monitor is down; writes are
  shed while verified reads keep flowing.  Retryable: supervision usually
  restarts the builder.
* ``SHUTTING_DOWN``    — graceful drain-then-stop in progress.  Retryable
  against a replacement server.
* ``TAMPER_DETECTED``  — the continuous verifier found mismatching hashes;
  the server refuses data operations outright.  NOT retryable.
* ``BAD_REQUEST`` / ``INTERNAL`` — malformed input / unexpected server
  error.  Not retryable.
"""

from __future__ import annotations

import datetime as dt
import json
import socket
import struct
from typing import Any, Dict, Optional

_LEN = struct.Struct(">I")

#: Refuse absurd frames before allocating for them (a corrupt length
#: prefix must not look like a 4 GiB allocation request).
MAX_FRAME_BYTES = 16 * 1024 * 1024

SERVER_BUSY = "SERVER_BUSY"
DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
DEGRADED = "DEGRADED"
SHUTTING_DOWN = "SHUTTING_DOWN"
TAMPER_DETECTED = "TAMPER_DETECTED"
BAD_REQUEST = "BAD_REQUEST"
INTERNAL = "INTERNAL"

RETRYABLE_CODES = frozenset(
    {SERVER_BUSY, DEADLINE_EXCEEDED, DEGRADED, SHUTTING_DOWN}
)


class ProtocolError(Exception):
    """The byte stream violated the framing contract (torn/oversized frame)."""


class RequestError(Exception):
    """A structured server-side rejection, carried back over the wire."""

    def __init__(self, code: str, message: str, retryable: Optional[bool] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retryable = (
            retryable if retryable is not None else code in RETRYABLE_CODES
        )

    def to_wire(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }

    @classmethod
    def from_wire(cls, error: Dict[str, Any]) -> "RequestError":
        return cls(
            str(error.get("code", INTERNAL)),
            str(error.get("message", "")),
            bool(error.get("retryable", False)),
        )


def jsonable(value: Any) -> Any:
    """Recursively coerce engine values into JSON-safe equivalents.

    SELECT results can carry ``bytes`` (VARBINARY system columns) and
    ``datetime`` values; both get stable text encodings so any row the
    engine can return can cross the wire.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dt.datetime):
        return value.isoformat()
    return value


def encode_frame(payload: Dict[str, Any]) -> bytes:
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds the maximum")
    return _LEN.pack(len(data)) + data


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF at a frame boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None  # clean EOF between frames
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; None on clean EOF.  Raises ProtocolError on tears."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the maximum")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        decoded = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(decoded, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return decoded

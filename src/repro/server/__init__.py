"""Network front-end for the ledger: a resilient multi-session server.

``python -m repro.server <path>`` serves a :class:`LedgerDatabase` (or a
sharded deployment) over length-prefixed JSON frames — see
:mod:`repro.server.protocol` for the wire format and
:mod:`repro.server.ledger_server` for the admission-control / group-commit
/ degraded-mode machinery.  The matching client library lives in
:mod:`repro.client`.
"""

from repro.server.ledger_server import LedgerServer
from repro.server.protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    DEGRADED,
    INTERNAL,
    RETRYABLE_CODES,
    SERVER_BUSY,
    SHUTTING_DOWN,
    TAMPER_DETECTED,
    RequestError,
)

__all__ = [
    "LedgerServer",
    "RequestError",
    "BAD_REQUEST",
    "DEADLINE_EXCEEDED",
    "DEGRADED",
    "INTERNAL",
    "RETRYABLE_CODES",
    "SERVER_BUSY",
    "SHUTTING_DOWN",
    "TAMPER_DETECTED",
]

"""The resilient ledger server: admission control, group commit, deadlines.

Architecture (one process, all stdlib)::

    accept thread ──► per-session reader threads ──► bounded admission queue
                                                          │  (put_nowait;
                                                          │   full = shed)
                                  worker pool (bounded) ◄─┘
                                       │
                         reads ────────┼──────── writes
                     (lock-free        │    (GroupCommitter per shard:
                      SELECT, drain-   │     one storage-lock hold, ONE
                      bounded digest/  │     fsync per group; acked only
                      receipt)         │     after the group hardens)

    Robustness policy, in order of evaluation per request:
      tamper-detected  → refuse data ops outright (verification wins)
      shutting down    → SHUTTING_DOWN  (graceful drain-then-stop)
      queue full       → SERVER_BUSY    (shed, never queue unbounded)
      deadline expired → DEADLINE_EXCEEDED (checked again at dequeue and
                         propagated into every pipeline drain barrier)
      degraded         → writes shed with DEGRADED, verified reads keep
                         flowing (builder/monitor down ≠ data loss)

Duplicate suppression: write requests may carry a client-minted
``txn_uuid``; the server remembers the commit receipt coordinates per uuid
so a retry after an ambiguous timeout returns the original commit instead
of double-committing (see :class:`IdempotencyIndex`).

Fault points (all four ride the torture kill matrix):

* ``server.accept_drop``       — a just-accepted connection is dropped (or
  the process dies in the accept path).
* ``server.read_stall``        — the session reader dies/stalls before a
  request frame is read.
* ``server.kill_mid_response`` — the process dies after flushing half a
  response frame: the client sees a torn frame, must treat the write as
  ambiguous, and may only retry because of idempotency keys.
* ``server.fsync_torn_group``  — registered by :mod:`repro.core.group_commit`:
  death mid-group-fsync, proving whole-transaction atomicity.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.ledger_database import LedgerDatabase
from repro.core.receipts import generate_receipt
from repro.errors import InjectedFaultError, LedgerError
from repro.faults import FAULTS
from repro.server import protocol
from repro.server.protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    DEGRADED,
    INTERNAL,
    SERVER_BUSY,
    SHUTTING_DOWN,
    TAMPER_DETECTED,
    ProtocolError,
    RequestError,
)

FAULTS.register(
    "server.accept_drop",
    "A freshly accepted connection is torn down before the session starts "
    "(exception mode) or the process dies in the accept path (kill mode). "
    "Clients must treat it as a transient connect failure and retry.",
)
FAULTS.register(
    "server.read_stall",
    "The session reader fails before a request frame is read — a stalled "
    "or half-dead client link.  The session dies; other sessions and the "
    "admission queue must be unaffected.",
)
FAULTS.register(
    "server.kill_mid_response",
    "The process dies after writing HALF of a response frame.  The client "
    "sees a torn frame, must classify the request as ambiguous, and can "
    "only safely retry because writes carry idempotency keys.",
)

_WRITE_KEYWORDS = frozenset(
    {"INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER", "TRUNCATE"}
)
_TXN_KEYWORDS = frozenset({"BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT"})

#: Default per-request deadline when the client does not send one.
DEFAULT_DEADLINE_SECONDS = 30.0


def _server_metrics(reg):
    class _Families:
        sessions = reg.gauge(
            "server_sessions", "Live client sessions on the ledger server"
        )
        inflight = reg.gauge(
            "server_inflight_requests", "Requests currently executing"
        )
        queue_depth = reg.gauge(
            "server_queue_depth", "Requests waiting in the admission queue"
        )
        requests = reg.counter(
            "server_requests_total",
            "Requests finished, by op and outcome",
            ("op", "outcome"),
        )
        shed = reg.counter(
            "server_shed_total",
            "Requests shed by the overload policy, by reason",
            ("reason",),
        )
        request_seconds = reg.histogram(
            "server_request_seconds",
            "Request latency from admission to response, by op",
            ("op",),
        )

    return _Families


class IdempotencyIndex:
    """Bounded uuid → commit-receipt map with in-flight coalescing.

    ``begin`` either returns the cached result of a finished duplicate,
    claims the key for this caller, or — when the original is still
    executing — waits for it and then returns its result.  Retries after
    an ambiguous timeout therefore commit **exactly once** no matter how
    the retry interleaves with the original.
    """

    def __init__(self, capacity: int = 8192) -> None:
        self._capacity = capacity
        self._lock = threading.Lock()
        self._done: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._inflight: Dict[str, threading.Event] = {}

    def begin(self, key: str) -> Tuple[str, Optional[Dict[str, Any]]]:
        while True:
            with self._lock:
                cached = self._done.get(key)
                if cached is not None:
                    self._done.move_to_end(key)
                    return "duplicate", cached
                pending = self._inflight.get(key)
                if pending is None:
                    self._inflight[key] = threading.Event()
                    return "mine", None
            pending.wait(timeout=30.0)

    def finish(self, key: str, result: Dict[str, Any]) -> None:
        with self._lock:
            self._done[key] = result
            while len(self._done) > self._capacity:
                self._done.popitem(last=False)
            pending = self._inflight.pop(key, None)
        if pending is not None:
            pending.set()

    def abandon(self, key: str) -> None:
        """The attempt failed pre-durability: let a retry run fresh."""
        with self._lock:
            pending = self._inflight.pop(key, None)
        if pending is not None:
            pending.set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._done)


class _Session:
    """One client connection: socket, reader thread, per-shard SQL state."""

    _ids = iter(range(1, 1 << 62))
    _ids_lock = threading.Lock()

    def __init__(self, sock: socket.socket, addr) -> None:
        with _Session._ids_lock:
            self.id = next(_Session._ids)
        self.sock = sock
        self.addr = addr
        self.write_lock = threading.Lock()
        # Requests from one connection execute serially (SQL sessions carry
        # transaction state); the queue may interleave sessions freely.
        # Reentrant because a worker holding it for a request may hit a dead
        # socket in _respond and fall into _drop_session's cleanup sweep.
        self.exec_lock = threading.RLock()
        self.sql_sessions: Dict[int, Any] = {}  # shard index -> SqlSession
        self.closed = threading.Event()

    def close(self) -> None:
        if not self.closed.is_set():
            self.closed.set()
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass


class _Request:
    __slots__ = ("session", "payload", "deadline", "admitted")

    def __init__(self, session: _Session, payload: Dict[str, Any], deadline: float):
        self.session = session
        self.payload = payload
        self.deadline = deadline
        self.admitted = time.perf_counter()


class LedgerServer:
    """Serve a :class:`LedgerDatabase` or ``ShardedLedger`` over TCP."""

    def __init__(
        self,
        db,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        queue_depth: int = 128,
        max_sessions: int = 512,
        max_group: int = 64,
        group_wait: float = 0.0,
        health_cache_seconds: float = 0.05,
    ) -> None:
        self._db = db
        self._host = host
        self._requested_port = port
        self._workers_count = max(1, int(workers))
        self._queue: "queue.Queue[_Request]" = queue.Queue(
            maxsize=max(1, int(queue_depth))
        )
        self._max_sessions = max(1, int(max_sessions))
        # Normalize single vs sharded: a list of LedgerDatabase shards.
        if isinstance(db, LedgerDatabase):
            self._shards: List[LedgerDatabase] = [db]
            self._sharded = None
        else:  # ShardedLedger (duck-typed: .shards, routing helpers)
            self._shards = list(db.shards)
            self._sharded = db
        ctx = self._shards[0].context
        self._ctx = ctx
        self._obs = ctx.obs
        self._faults = ctx.faults
        self._m = ctx.metrics.handles("server", _server_metrics)
        from repro.core.group_commit import GroupCommitter

        self._committers = [
            GroupCommitter(shard, max_group=max_group, max_wait=group_wait)
            for shard in self._shards
        ]
        self._idempotency = IdempotencyIndex()
        self._health_cache_seconds = health_cache_seconds
        self._tier_cache: Tuple[float, str] = (0.0, "ok")
        self._tier_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._worker_threads: List[threading.Thread] = []
        self._sessions: Dict[int, _Session] = {}
        self._sessions_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._running = False
        self._stopping = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._shed_counts: Dict[str, int] = {}
        self._shed_lock = threading.Lock()
        self._requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "LedgerServer":
        with self._state_lock:
            if self._running:
                return self
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._requested_port))
            listener.listen(128)
            self._listener = listener
            self._running = True
            self._stopping = False
        for index in range(self._workers_count):
            thread = threading.Thread(
                target=self._worker_loop,
                name=self._ctx.scoped(f"ledger-server-worker-{index}"),
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=self._ctx.scoped("ledger-server-accept"),
            daemon=True,
        )
        self._accept_thread.start()
        self._ctx.events.emit(
            "server", "server.started", host=self._host, port=self.port
        )
        return self

    @property
    def port(self) -> int:
        assert self._listener is not None, "server not started"
        return self._listener.getsockname()[1]

    @property
    def running(self) -> bool:
        return self._running

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Graceful drain-then-stop (or fast stop with ``drain=False``).

        Stops accepting, lets queued + in-flight requests finish (bounded
        by ``timeout``), then tears down sessions and joins every thread.
        Idempotent.
        """
        with self._state_lock:
            if not self._running:
                return
            self._stopping = True
        deadline = time.monotonic() + timeout
        if drain:
            while time.monotonic() < deadline:
                if self._queue.empty() and self._current_inflight() == 0:
                    break
                time.sleep(0.005)
        with self._state_lock:
            self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for thread in self._worker_threads:
            thread.join(timeout=2.0)
        self._worker_threads.clear()
        for committer in self._committers:
            committer.close()
        self._ctx.events.emit(
            "server", "server.stopped", requests=self._requests_served
        )

    # ------------------------------------------------------------------
    # Accept + session readers
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while self._running:
            try:
                conn, addr = listener.accept()
            except OSError:
                break  # listener closed during stop()
            try:
                self._faults.fire("server.accept_drop", addr=str(addr))
            except InjectedFaultError:
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            session = _Session(conn, addr)
            with self._sessions_lock:
                if self._stopping or len(self._sessions) >= self._max_sessions:
                    overloaded = not self._stopping
                    session_count = len(self._sessions)
                else:
                    overloaded = None
                    self._sessions[session.id] = session
                    session_count = len(self._sessions)
            if overloaded is not None:
                # Session-level admission control: refuse with a structured
                # frame rather than an unexplained RST, then close.
                self._shed("sessions" if overloaded else "shutdown")
                if overloaded:
                    code, message = SERVER_BUSY, "session limit reached"
                else:
                    code, message = SHUTTING_DOWN, "server is draining"
                try:
                    protocol.send_frame(
                        conn,
                        {
                            "ok": False,
                            "seq": None,
                            "error": RequestError(code, message).to_wire(),
                        },
                    )
                except OSError:
                    pass
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            if self._obs.metrics.enabled:
                self._m.sessions.set(session_count)
            reader = threading.Thread(
                target=self._reader_loop,
                args=(session,),
                name=self._ctx.scoped(f"ledger-server-reader-{session.id}"),
                daemon=True,
            )
            reader.start()

    def _reader_loop(self, session: _Session) -> None:
        try:
            while not session.closed.is_set():
                try:
                    self._faults.fire("server.read_stall", session=session.id)
                except InjectedFaultError:
                    break
                try:
                    payload = protocol.recv_frame(session.sock)
                except (ProtocolError, OSError):
                    break
                if payload is None:
                    break  # client hung up cleanly
                self._admit(session, payload)
        finally:
            self._drop_session(session)

    def _admit(self, session: _Session, payload: Dict[str, Any]) -> None:
        """Admission control: bounded queue, shed — never queue unbounded."""
        seq = payload.get("seq")
        if self._stopping:
            self._shed("shutdown")
            self._respond_error(
                session, seq,
                RequestError(SHUTTING_DOWN, "server is draining"),
            )
            return
        deadline_ms = payload.get("deadline_ms")
        try:
            budget = (
                float(deadline_ms) / 1000.0
                if deadline_ms is not None
                else DEFAULT_DEADLINE_SECONDS
            )
        except (TypeError, ValueError):
            self._respond_error(
                session, seq,
                RequestError(BAD_REQUEST, "deadline_ms must be a number"),
            )
            return
        request = _Request(session, payload, time.monotonic() + budget)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._shed("queue_full")
            self._respond_error(
                session, seq,
                RequestError(
                    SERVER_BUSY,
                    f"admission queue full ({self._queue.maxsize} deep)",
                ),
            )
            return
        if self._obs.metrics.enabled:
            self._m.queue_depth.set(self._queue.qsize())

    def _drop_session(self, session: _Session) -> None:
        session.close()
        with self._sessions_lock:
            self._sessions.pop(session.id, None)
            count = len(self._sessions)
        # A client that dies mid-BEGIN leaves an open explicit transaction
        # whose NOWAIT table locks are only released by commit/rollback —
        # without this sweep every later writer to those tables fails until
        # restart.  exec_lock serializes with any in-flight request on this
        # session (and is reentrant: _respond can land here mid-request).
        with session.exec_lock:
            for sql_session in session.sql_sessions.values():
                try:
                    sql_session.abort()
                except Exception:  # noqa: BLE001 — cleanup must not die
                    pass
        if self._obs.metrics.enabled:
            self._m.sessions.set(count)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def _current_inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def _worker_loop(self) -> None:
        while True:
            try:
                request = self._queue.get(timeout=0.05)
            except queue.Empty:
                if not self._running:
                    return
                continue
            if self._obs.metrics.enabled:
                self._m.queue_depth.set(self._queue.qsize())
            with self._inflight_lock:
                self._inflight += 1
            if self._obs.metrics.enabled:
                self._m.inflight.set(self._inflight)
            try:
                self._handle(request)
            finally:
                with self._inflight_lock:
                    self._inflight -= 1
                if self._obs.metrics.enabled:
                    self._m.inflight.set(self._inflight)

    def _handle(self, request: _Request) -> None:
        session = request.session
        payload = request.payload
        op = str(payload.get("op", ""))
        seq = payload.get("seq")
        started = request.admitted
        if session.closed.is_set():
            # The connection is gone; there is nowhere to send a response
            # and executing could re-open transaction state that
            # _drop_session already rolled back.
            return
        # Deadline re-check at dequeue: a request that sat out its budget
        # in the queue is shed here rather than executed uselessly.
        if time.monotonic() > request.deadline:
            self._shed("deadline")
            self._respond_error(
                session, seq,
                RequestError(
                    DEADLINE_EXCEEDED, "deadline expired in admission queue"
                ),
                op=op,
            )
            return
        with session.exec_lock:
            try:
                with self._obs.tracer.span(
                    "server.request", op=op, session=session.id
                ):
                    result = self._dispatch(session, op, payload, request)
            except RequestError as exc:
                if exc.code in (DEADLINE_EXCEEDED, DEGRADED, SERVER_BUSY):
                    self._shed(exc.code.lower())
                self._respond_error(session, seq, exc, op=op)
                return
            except (LedgerError, ValueError, KeyError, TypeError) as exc:
                self._respond_error(
                    session, seq,
                    RequestError(BAD_REQUEST, f"{type(exc).__name__}: {exc}"),
                    op=op,
                )
                return
            except InjectedFaultError as exc:
                self._respond_error(
                    session, seq,
                    RequestError(INTERNAL, f"injected fault: {exc}"),
                    op=op,
                )
                return
            except Exception as exc:  # noqa: BLE001 — the server must not die
                self._respond_error(
                    session, seq,
                    RequestError(INTERNAL, f"{type(exc).__name__}: {exc}"),
                    op=op,
                )
                return
        self._requests_served += 1
        if self._obs.metrics.enabled:
            self._m.requests.labels(op, "ok").inc()
            self._m.request_seconds.labels(op).observe(
                time.perf_counter() - started
            )
        self._respond(session, {"ok": True, "seq": seq, "result": result})

    # ------------------------------------------------------------------
    # Response writing (the kill_mid_response fault lives here)
    # ------------------------------------------------------------------

    def _respond(self, session: _Session, frame: Dict[str, Any]) -> None:
        try:
            data = protocol.encode_frame(frame)
        except ProtocolError:
            data = protocol.encode_frame(
                {
                    "ok": False,
                    "seq": frame.get("seq"),
                    "error": RequestError(
                        INTERNAL, "response exceeded frame limit"
                    ).to_wire(),
                }
            )
        try:
            with session.write_lock:
                if self._faults.armed("server.kill_mid_response"):
                    # Split the write so an injected death lands between
                    # the halves: the client sees a torn response frame.
                    half = len(data) // 2
                    session.sock.sendall(data[:half])
                    self._faults.fire(
                        "server.kill_mid_response", session=session.id
                    )
                    session.sock.sendall(data[half:])
                else:
                    session.sock.sendall(data)
        except InjectedFaultError:
            self._drop_session(session)
        except OSError:
            self._drop_session(session)

    def _respond_error(
        self,
        session: _Session,
        seq: Any,
        error: RequestError,
        op: str = "",
    ) -> None:
        if self._obs.metrics.enabled and op:
            self._m.requests.labels(op, error.code.lower()).inc()
        self._respond(
            session, {"ok": False, "seq": seq, "error": error.to_wire()}
        )

    def _shed(self, reason: str) -> None:
        with self._shed_lock:
            self._shed_counts[reason] = self._shed_counts.get(reason, 0) + 1
        if self._obs.metrics.enabled:
            self._m.shed.labels(reason).inc()

    # ------------------------------------------------------------------
    # Health tiers (mirrors /healthz: ok → degraded → tamper-detected)
    # ------------------------------------------------------------------

    def _health_tier(self) -> str:
        now = time.monotonic()
        with self._tier_lock:
            stamp, tier = self._tier_cache
            if now - stamp < self._health_cache_seconds:
                return tier
        tier = self._compute_tier()
        with self._tier_lock:
            self._tier_cache = (now, tier)
        return tier

    def _compute_tier(self) -> str:
        tier = "ok"
        for shard in self._shards:
            monitor = shard.monitor
            if monitor is not None and not monitor.healthy:
                return "tamper-detected"
            if monitor is not None and monitor.expected_running:
                if not monitor.running:
                    tier = "degraded"
            pipeline = shard.pipeline
            if pipeline.expected_running and not pipeline.running:
                tier = "degraded"
            if pipeline.stats()["supervisor_gave_up"]:
                tier = "degraded"
        if self._sharded is not None:
            super_monitor = getattr(self._sharded, "monitor", None)
            if super_monitor is not None and not getattr(
                super_monitor, "healthy", True
            ):
                return "tamper-detected"
        return tier

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        session: _Session,
        op: str,
        payload: Dict[str, Any],
        request: _Request,
    ) -> Dict[str, Any]:
        if op == "ping":
            return {"pong": True}
        if op == "stats":
            return self.stats()
        if op == "health":
            return self._health_result()
        tier = self._health_tier()
        if tier == "tamper-detected":
            raise RequestError(
                TAMPER_DETECTED,
                "continuous verification detected tampering; data "
                "operations refused",
                retryable=False,
            )
        if op == "select":
            return self._op_select(payload)
        if op == "digest":
            return self._op_digest(payload, request)
        if op == "receipt":
            return self._op_receipt(payload, request)
        if op == "insert":
            self._require_writable(tier)
            return self._idempotent_write(
                payload, lambda: self._op_insert(payload)
            )
        if op == "execute":
            return self._op_execute(session, payload, tier)
        raise RequestError(BAD_REQUEST, f"unknown op {op!r}")

    def _require_writable(self, tier: str) -> None:
        if tier == "degraded":
            raise RequestError(
                DEGRADED,
                "block builder or monitor is down: writes are shed, "
                "verified reads keep flowing",
            )
        if self._stopping:
            raise RequestError(SHUTTING_DOWN, "server is draining")

    # -- reads ---------------------------------------------------------

    def _shard_for_table(self, table: str) -> LedgerDatabase:
        if self._sharded is not None:
            return self._sharded.route(table)
        return self._shards[0]

    def _shard_index_for_table(self, table: Optional[str]) -> int:
        if self._sharded is None or table is None:
            return 0
        return self._sharded.shard_index_for_table(table)

    def _op_select(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        table = str(payload["table"])
        db = self._shard_for_table(table)
        rows = db.select(table)
        return {"rows": protocol.jsonable(rows), "count": len(rows)}

    def _remaining(self, request: _Request) -> float:
        remaining = request.deadline - time.monotonic()
        if remaining <= 0:
            raise RequestError(
                DEADLINE_EXCEEDED, "deadline expired before the drain barrier"
            )
        return remaining

    def _op_digest(
        self, payload: Dict[str, Any], request: _Request
    ) -> Dict[str, Any]:
        # The drain barrier honours the request's remaining budget: a
        # deadline-bounded digest fails fast instead of stalling a worker
        # behind slow in-flight commits.
        import json as _json

        digests = []
        for db in self._shards:
            try:
                db.pipeline.drain(seal_open=True, timeout=self._remaining(request))
            except LedgerError as exc:
                raise RequestError(DEADLINE_EXCEEDED, str(exc)) from exc
            digest = db.ledger.generate_digest(
                db.database_guid, db.database_create_time
            )
            digests.append(_json.loads(digest.to_json()))
        return {"digests": digests}

    def _op_receipt(
        self, payload: Dict[str, Any], request: _Request
    ) -> Dict[str, Any]:
        import json as _json

        tid = int(payload["tid"])
        shard_index = int(payload.get("shard", 0))
        db = self._shards[shard_index]
        try:
            db.pipeline.drain(seal_open=True, timeout=self._remaining(request))
        except LedgerError as exc:
            raise RequestError(DEADLINE_EXCEEDED, str(exc)) from exc
        receipt = generate_receipt(db, tid)
        return {"receipt": _json.loads(receipt.to_json())}

    # -- writes --------------------------------------------------------

    def _idempotent_write(
        self, payload: Dict[str, Any], work: Callable[[], Dict[str, Any]]
    ) -> Dict[str, Any]:
        key = payload.get("txn_uuid")
        if not key:
            return work()
        key = str(key)
        state, cached = self._idempotency.begin(key)
        if state == "duplicate":
            assert cached is not None
            return {**cached, "duplicate": True}
        try:
            result = work()
        except BaseException:
            self._idempotency.abandon(key)
            raise
        self._idempotency.finish(key, result)
        return result

    def _op_insert(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        table = str(payload["table"])
        rows = payload["rows"]
        if not isinstance(rows, list) or not rows:
            raise RequestError(BAD_REQUEST, "rows must be a non-empty list")
        shard_index = self._shard_index_for_table(table)
        db = self._shards[shard_index]
        committer = self._committers[shard_index]
        trace = self._obs.tracer.capture_context()
        tracer = self._obs.tracer

        def work() -> Dict[str, Any]:
            # Joined to the session's request span even though the group
            # leader may be a different thread: the commit lineage of every
            # grouped member stays attributable to its session.
            with tracer.span("server.commit", context=trace, table=table):
                txn = db.begin()
                try:
                    db.insert(txn, table, rows)
                    commit_payload = db.commit(txn)
                except BaseException:
                    try:
                        db.rollback(txn)
                    except Exception:
                        pass
                    raise
            result = {"tid": txn.tid, "rows": len(rows), "shard": shard_index}
            if commit_payload:
                result["block"] = commit_payload.get("block")
                result["ordinal"] = commit_payload.get("ordinal")
            return result

        return committer.run(work)

    def _op_execute(
        self, session: _Session, payload: Dict[str, Any], tier: str
    ) -> Dict[str, Any]:
        sql = str(payload["sql"])
        keyword = sql.lstrip().split(None, 1)[0].upper() if sql.strip() else ""
        table = (
            self._sharded.table_in_statement(sql)
            if self._sharded is not None
            else None
        )
        shard_index = self._shard_index_for_table(table)
        db = self._shards[shard_index]
        sql_session = session.sql_sessions.get(shard_index)
        if sql_session is None:
            from repro.sql.session import SqlSession

            sql_session = SqlSession(db)
            session.sql_sessions[shard_index] = sql_session
        is_write = keyword in _WRITE_KEYWORDS or keyword in _TXN_KEYWORDS
        if not is_write:
            rows = sql_session.execute(sql)
            return {
                "rows": protocol.jsonable(rows) if rows is not None else None
            }
        self._require_writable(tier)
        if sql_session.in_transaction or keyword in _TXN_KEYWORDS:
            # Interactive multi-request transactions hold NOWAIT table locks
            # across frames; they execute directly (grouping would only
            # stretch the lock hold) on this worker thread.
            result = sql_session.execute(sql)
            return self._execute_result(sql_session, result)

        def work() -> Dict[str, Any]:
            result = sql_session.execute(sql)
            return self._execute_result(sql_session, result)

        return self._idempotent_write(
            payload, lambda: self._committers[shard_index].run(work)
        )

    @staticmethod
    def _execute_result(sql_session, result) -> Dict[str, Any]:
        out: Dict[str, Any] = {"rows": protocol.jsonable(result)}
        commit = sql_session.last_commit_payload
        if commit:
            out["block"] = commit.get("block")
            out["ordinal"] = commit.get("ordinal")
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _health_result(self) -> Dict[str, Any]:
        tier = self._compute_tier()
        shards = []
        for db in self._shards:
            stats = db.pipeline.stats()
            monitor = db.monitor
            shards.append(
                {
                    "name": db.context.name or "default",
                    "builder_running": stats["running"],
                    "builder_expected": stats["expected_running"],
                    "monitor_healthy": (
                        monitor.healthy if monitor is not None else None
                    ),
                }
            )
        return {
            "status": tier,
            "writes": "shed" if tier != "ok" or self._stopping else "accepted",
            "shards": shards,
        }

    def group_stats(self) -> Dict[str, Any]:
        totals = {"groups": 0, "members": 0, "max_group_size": 0}
        for committer in self._committers:
            stats = committer.stats()
            totals["groups"] += stats["groups"]
            totals["members"] += stats["members"]
            totals["max_group_size"] = max(
                totals["max_group_size"], stats["max_group_size"]
            )
        totals["mean_group_size"] = (
            totals["members"] / totals["groups"] if totals["groups"] else 0.0
        )
        return totals

    def stats(self) -> Dict[str, Any]:
        with self._sessions_lock:
            sessions = len(self._sessions)
        with self._shed_lock:
            shed = dict(self._shed_counts)
        return {
            "sessions": sessions,
            "inflight": self._current_inflight(),
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
            "requests_served": self._requests_served,
            "shed": shed,
            "group_commit": self.group_stats(),
            "idempotency_entries": len(self._idempotency),
            "tier": self._health_tier(),
            "stopping": self._stopping,
        }

"""CLI: ``python -m repro.server <path>`` — run a ledger server.

Prints ``LEDGER_SERVER_PORT=<port>`` on stdout once listening (harness
drivers and the CI SIGKILL drill parse that line), then serves until
SIGTERM/SIGINT, which trigger a graceful drain-then-stop plus a clean
database close.  SIGKILL, by contrast, is exactly what the torture drill
sends — recovery must then reopen with zero acknowledged-commit loss.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server", description=__doc__
    )
    parser.add_argument("path", help="database directory (created if absent)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=128)
    parser.add_argument("--max-sessions", type=int, default=512)
    parser.add_argument("--max-group", type=int, default=64)
    parser.add_argument(
        "--shards", type=int, default=0,
        help="serve a sharded deployment with N shards (0 = single engine)",
    )
    parser.add_argument(
        "--sync", action="store_true",
        help="fsync WAL appends (group commit amortizes these)",
    )
    parser.add_argument("--block-size", type=int, default=None)
    parser.add_argument(
        "--monitor-interval", type=float, default=0.0,
        help="start the continuous verifier at this interval (0 = off)",
    )
    args = parser.parse_args(argv)

    if args.shards > 0:
        from repro.core.sharded import ShardedLedger

        db = ShardedLedger.open(
            args.path, shards=args.shards,
            block_size=args.block_size, sync=args.sync,
        )
    else:
        from repro.core.ledger_database import LedgerDatabase

        db = LedgerDatabase.open(
            args.path, block_size=args.block_size, sync=args.sync
        )
    if args.monitor_interval > 0:
        db.start_monitor(interval=args.monitor_interval)

    from repro.server.ledger_server import LedgerServer

    server = LedgerServer(
        db,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_sessions=args.max_sessions,
        max_group=args.max_group,
    ).start()
    print(f"LEDGER_SERVER_PORT={server.port}", flush=True)

    stop_event = threading.Event()

    def _signal(_signum, _frame):
        stop_event.set()

    signal.signal(signal.SIGTERM, _signal)
    signal.signal(signal.SIGINT, _signal)
    try:
        while not stop_event.wait(timeout=0.5):
            pass
    finally:
        server.stop(drain=True)
        db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

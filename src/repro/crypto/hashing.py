"""SHA-256 hashing helpers with domain separation.

The paper uses SHA-256 throughout (row versions, Merkle nodes, transaction
entries, blocks).  We add one-byte domain-separation tags so a hash produced
for one purpose (say, a Merkle leaf) can never be confused with a hash
produced for another (an interior node).  Without such tags, a classic
second-preimage trick lets an attacker present interior nodes as leaves;
production Merkle implementations (Certificate Transparency, RFC 6962)
separate the domains exactly this way.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Size in bytes of every digest in the system (SHA-256).
HASH_SIZE = 32

# Domain-separation tags (one byte each, RFC 6962 style).
_TAG_LEAF = b"\x00"
_TAG_INTERIOR = b"\x01"
_TAG_TRANSACTION = b"\x02"
_TAG_BLOCK = b"\x03"


def sha256(data: bytes) -> bytes:
    """Return the raw 32-byte SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hash_leaf(serialized_row: bytes) -> bytes:
    """Hash a serialized row version into a Merkle leaf (paper §3.2).

    The input is the canonical serialization produced by
    :class:`repro.crypto.serialization.RowSerializer`, which already embeds
    the column metadata the paper requires.
    """
    return sha256(_TAG_LEAF + serialized_row)


#: Pre-seeded hashlib context holding the leaf tag; ``copy()`` per row is
#: cheaper than constructing a context and re-hashing the tag each call.
_LEAF_SEED = hashlib.sha256(_TAG_LEAF)


def hash_leaves(serialized_rows: Iterable[bytes]) -> List[bytes]:
    """Hash a statement's whole row set into Merkle leaves in one pass.

    Equivalent to ``[hash_leaf(row) for row in serialized_rows]`` but feeds
    one reused (copied) pre-seeded hashlib context per row, avoiding the
    per-call function and object churn the single-row path pays — the batch
    half of making per-row costs per-statement costs.
    """
    seed_copy = _LEAF_SEED.copy
    out: List[bytes] = []
    append = out.append
    for row in serialized_rows:
        ctx = seed_copy()
        ctx.update(row)
        append(ctx.digest())
    return out


def hash_interior(left: bytes, right: bytes) -> bytes:
    """Hash two child digests into a Merkle interior node."""
    if len(left) != HASH_SIZE or len(right) != HASH_SIZE:
        raise ValueError("interior node children must be 32-byte digests")
    return sha256(_TAG_INTERIOR + left + right)


def hash_transaction_entry(payload: bytes) -> bytes:
    """Hash a serialized Database Ledger transaction entry (paper §3.3.1)."""
    return sha256(_TAG_TRANSACTION + payload)


def hash_block(payload: bytes) -> bytes:
    """Hash a serialized Database Ledger block (paper §3.3.1)."""
    return sha256(_TAG_BLOCK + payload)


def hash_many(chunks: Iterable[bytes]) -> bytes:
    """Hash a sequence of byte chunks as a single untagged stream.

    Used where the caller has already applied framing (length prefixes) and
    simply wants to avoid concatenating a large buffer.
    """
    hasher = hashlib.sha256()
    for chunk in chunks:
        hasher.update(chunk)
    return hasher.digest()


class LeafHashCache:
    """Bounded LRU cache for leaf digests derived from stored row versions.

    Verification recomputes ``hash_leaf`` over the canonical serialization of
    every row version on every run; for a continuously-running monitor the
    same unchanged rows are re-decoded and re-hashed each cycle.  This cache
    memoizes the derived per-record data so warm verification runs skip both
    the decode and the serialization.

    Soundness: entries are keyed by ``(context, record_bytes)`` where
    ``context`` is a fingerprint of the schema the bytes decode under and
    ``record_bytes`` are the *exact stored bytes*.  Because the key covers
    every input of the leaf computation, a tampered record (or a tampered
    column type, which changes the schema fingerprint) can never hit a stale
    entry — it simply misses and is recomputed from the tampered bytes, which
    then fail the root comparison.  Keying by ``(transaction_id, sequence)``
    alone would be unsound: a tampered row would reuse the honest row's
    cached hash and mask the tampering.

    The cache value is opaque to this module (the verifier stores the decoded
    leaf events and sort key).  ``hits`` / ``misses`` counters are plain
    attributes; the verifier mirrors their deltas into the metrics registry
    so this module keeps zero repro-internal imports.
    """

    def __init__(self, capacity: int = 131072) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._data: "OrderedDict[Tuple[str, bytes], Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    @staticmethod
    def make_key(context: str, record: bytes) -> Tuple[str, bytes]:
        """Build the cache key once; pass it to :meth:`get_by_key` /
        :meth:`put_by_key` so a miss-then-insert cycle does not rebuild it."""
        return (context, record)

    def get_by_key(self, key: Tuple[str, bytes]) -> Optional[Any]:
        """Return the cached value for a prebuilt key, or ``None``."""
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put_by_key(self, key: Tuple[str, bytes], value: Any) -> None:
        """Insert under a prebuilt key, evicting the LRU entry if full."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def get(self, context: str, record: bytes) -> Optional[Any]:
        """Return the cached value for ``(context, record)``, or ``None``."""
        return self.get_by_key((context, record))

    def put(self, context: str, record: bytes, value: Any) -> None:
        """Insert a value, evicting the least-recently-used entry if full."""
        self.put_by_key((context, record), value)

    def stats(self) -> Dict[str, int]:
        """Point-in-time counters for mirroring into a metrics registry."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._data),
                "capacity": self.capacity,
            }

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0


def to_hex(digest: bytes) -> str:
    """Render a digest as the ``0x``-prefixed hex string used in JSON digests."""
    return "0x" + digest.hex()


def from_hex(text: str) -> bytes:
    """Parse a digest rendered by :func:`to_hex` back into raw bytes."""
    if text.startswith(("0x", "0X")):
        text = text[2:]
    raw = bytes.fromhex(text)
    if len(raw) != HASH_SIZE:
        raise ValueError(f"expected a {HASH_SIZE}-byte digest, got {len(raw)} bytes")
    return raw

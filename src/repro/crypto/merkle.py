"""Merkle trees: streaming root computation, full trees, inclusion proofs.

Two implementations cover the two ways the paper uses Merkle trees:

* :class:`MerkleHasher` — the streaming algorithm of §3.2.1.  It computes the
  root of a Merkle tree *while leaves arrive*, holding only the last unpaired
  node per level: O(N) time, O(log N) space.  Its state can be snapshotted
  and restored in O(log N), which is what makes partial transaction rollbacks
  (savepoints) cheap.

* :class:`MerkleTree` — a materialized tree over a known list of leaves.
  The block builder uses it to compute the per-block transaction root and to
  produce :class:`MerkleProof` inclusion proofs for non-repudiation receipts
  (§5.1).

Both use the same node rules, so they always agree on the root:

* interior node = ``SHA-256(0x01 || left || right)``;
* a node with no sibling is *promoted unchanged* to the parent level
  (the paper's rule — no duplication of the last node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.crypto.hashing import HASH_SIZE, hash_interior, sha256
from repro.errors import MerkleError

#: Root reported for a tree with zero leaves (RFC 6962 convention).
EMPTY_TREE_ROOT = sha256(b"")


def _merkle_metrics(reg):
    class _Families:
        leaves_appended = reg.counter(
            "merkle_leaves_appended_total",
            "Leaf digests appended to streaming Merkle hashers",
        )
        nodes_built = reg.counter(
            "merkle_nodes_built_total",
            "Interior Merkle nodes computed, by implementation",
            ("impl",),
        )
        nodes_streaming = nodes_built.labels("streaming")
        nodes_materialized = nodes_built.labels("materialized")

    return _Families


def _default_metrics():
    from repro.obs import OBS

    return OBS.metrics

#: Opaque snapshot of a MerkleHasher: (leaf_count, pending node per level).
MerkleState = Tuple[int, Tuple[Optional[bytes], ...]]


class MerkleHasher:
    """Streaming Merkle root computation with O(log N) state (paper §3.2.1).

    Leaves are appended one at a time with :meth:`append`.  At any point,
    :meth:`root` computes the root over the leaves appended so far without
    disturbing the ability to append more.  :meth:`snapshot` /
    :meth:`restore` copy and reinstate the internal state; the ledger layer
    uses these to implement transaction savepoints.

    The algorithm stores, per tree level, the last node appended to that
    level that does not yet have a right sibling.  When a new node arrives at
    a level that already has a pending node, the two are combined into an
    interior node that is appended — recursively — to the parent level.
    """

    def __init__(self, metrics=None) -> None:
        self._pending: List[Optional[bytes]] = []
        self._leaf_count = 0
        self._reg = metrics if metrics is not None else _default_metrics()
        self._m = self._reg.handles("merkle", _merkle_metrics)

    @property
    def leaf_count(self) -> int:
        """Number of leaves appended so far."""
        return self._leaf_count

    def append(self, leaf_hash: bytes) -> None:
        """Append one leaf digest to the tree."""
        if len(leaf_hash) != HASH_SIZE:
            raise MerkleError(
                f"leaf must be a {HASH_SIZE}-byte digest, got {len(leaf_hash)} bytes"
            )
        carry = leaf_hash
        level = 0
        combined = 0
        while True:
            if level == len(self._pending):
                self._pending.append(carry)
                break
            if self._pending[level] is None:
                self._pending[level] = carry
                break
            carry = hash_interior(self._pending[level], carry)
            combined += 1
            self._pending[level] = None
            level += 1
        self._leaf_count += 1
        if self._reg.enabled:
            self._m.leaves_appended.inc()
            if combined:
                self._m.nodes_streaming.inc(combined)

    def extend(self, leaf_hashes: Sequence[bytes]) -> None:
        """Append a batch of leaf digests with one metrics observation.

        The carry loop is identical to :meth:`append`; validation, the
        enabled-check and the counter updates are hoisted out of the per-leaf
        loop so a multi-row statement pays them once.
        """
        for leaf_hash in leaf_hashes:
            if len(leaf_hash) != HASH_SIZE:
                raise MerkleError(
                    f"leaf must be a {HASH_SIZE}-byte digest, "
                    f"got {len(leaf_hash)} bytes"
                )
        pending = self._pending
        combined = 0
        for leaf_hash in leaf_hashes:
            carry = leaf_hash
            level = 0
            while True:
                if level == len(pending):
                    pending.append(carry)
                    break
                if pending[level] is None:
                    pending[level] = carry
                    break
                carry = hash_interior(pending[level], carry)
                combined += 1
                pending[level] = None
                level += 1
        self._leaf_count += len(leaf_hashes)
        if self._reg.enabled and leaf_hashes:
            self._m.leaves_appended.inc(len(leaf_hashes))
            if combined:
                self._m.nodes_streaming.inc(combined)

    def root(self) -> bytes:
        """Compute the Merkle root over all leaves appended so far.

        Unpaired nodes are promoted unchanged, lowest level first, so the
        result matches :meth:`MerkleTree.root` over the same leaves.  The
        hasher remains usable for further appends.
        """
        if self._leaf_count == 0:
            return EMPTY_TREE_ROOT
        accumulated: Optional[bytes] = None
        for node in self._pending:
            if node is None:
                continue
            if accumulated is None:
                accumulated = node
            else:
                # The pending node at a higher level predates everything that
                # was promoted from lower levels, so it is the left child.
                accumulated = hash_interior(node, accumulated)
        assert accumulated is not None
        return accumulated

    def snapshot(self) -> MerkleState:
        """Capture the O(log N) internal state for a savepoint."""
        return (self._leaf_count, tuple(self._pending))

    def restore(self, state: MerkleState) -> None:
        """Roll the hasher back to a state captured by :meth:`snapshot`."""
        leaf_count, pending = state
        self._leaf_count = leaf_count
        self._pending = list(pending)

    def state_size(self) -> int:
        """Number of digests currently held (the O(log N) space bound)."""
        return sum(1 for node in self._pending if node is not None)


def state_to_dict(state: MerkleState) -> dict:
    """Render a :data:`MerkleState` as a JSON-serializable dict.

    Verification checkpoints persist per-table Merkle frontiers across
    process restarts, so the opaque snapshot tuple needs a stable on-disk
    form.  ``None`` slots (levels with no pending node) round-trip as JSON
    nulls.
    """
    leaf_count, pending = state
    return {
        "leaf_count": leaf_count,
        "pending": [None if node is None else node.hex() for node in pending],
    }


def state_from_dict(data: dict) -> MerkleState:
    """Parse a dict produced by :func:`state_to_dict`.

    Raises :class:`repro.errors.MerkleError` on malformed input so callers
    can treat a corrupt checkpoint as untrusted and fall back to a full scan.
    """
    try:
        leaf_count = int(data["leaf_count"])
        pending = tuple(
            None if node is None else bytes.fromhex(node)
            for node in data["pending"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise MerkleError(f"malformed Merkle state: {exc}") from exc
    if leaf_count < 0 or any(
        node is not None and len(node) != HASH_SIZE for node in pending
    ):
        raise MerkleError("malformed Merkle state: bad digest or leaf count")
    return (leaf_count, pending)


@dataclass(frozen=True)
class ProofStep:
    """One step of a Merkle inclusion proof.

    ``sibling`` is the digest to combine with, and ``sibling_on_left`` says
    which side it goes on.  Levels where the proved node was promoted without
    a sibling contribute no step.
    """

    sibling: bytes
    sibling_on_left: bool

    def to_dict(self) -> dict:
        return {
            "sibling": "0x" + self.sibling.hex(),
            "side": "left" if self.sibling_on_left else "right",
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProofStep":
        sibling = bytes.fromhex(data["sibling"].removeprefix("0x"))
        return cls(sibling=sibling, sibling_on_left=data["side"] == "left")


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof that a leaf occurs at ``leaf_index`` in a tree."""

    leaf_index: int
    tree_size: int
    steps: Tuple[ProofStep, ...]

    def compute_root(self, leaf_hash: bytes) -> bytes:
        """Fold the proof over ``leaf_hash`` to obtain the implied root."""
        node = leaf_hash
        for step in self.steps:
            if step.sibling_on_left:
                node = hash_interior(step.sibling, node)
            else:
                node = hash_interior(node, step.sibling)
        return node

    def verify(self, leaf_hash: bytes, expected_root: bytes) -> bool:
        """Return True iff the proof links ``leaf_hash`` to ``expected_root``."""
        return self.compute_root(leaf_hash) == expected_root

    def to_dict(self) -> dict:
        return {
            "leaf_index": self.leaf_index,
            "tree_size": self.tree_size,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MerkleProof":
        return cls(
            leaf_index=int(data["leaf_index"]),
            tree_size=int(data["tree_size"]),
            steps=tuple(ProofStep.from_dict(s) for s in data["steps"]),
        )


class MerkleTree:
    """Materialized Merkle tree over a fixed sequence of leaf digests.

    Builds every level eagerly, which costs O(N) space but enables
    :meth:`proof` generation.  The block builder only materializes the tree
    for one block at a time (at most the block size), so this is bounded.
    """

    def __init__(self, leaves: Iterable[bytes], metrics=None) -> None:
        reg = metrics if metrics is not None else _default_metrics()
        level0 = list(leaves)
        for leaf in level0:
            if len(leaf) != HASH_SIZE:
                raise MerkleError("all leaves must be 32-byte digests")
        self._levels: List[List[bytes]] = [level0]
        current = level0
        built = 0
        while len(current) > 1:
            parent: List[bytes] = []
            for i in range(0, len(current) - 1, 2):
                parent.append(hash_interior(current[i], current[i + 1]))
            built += len(current) // 2
            if len(current) % 2 == 1:
                parent.append(current[-1])  # promote unpaired node unchanged
            self._levels.append(parent)
            current = parent
        if built and reg.enabled:
            reg.handles("merkle", _merkle_metrics).nodes_materialized.inc(built)

    @property
    def leaf_count(self) -> int:
        return len(self._levels[0])

    def root(self) -> bytes:
        """Root digest (EMPTY_TREE_ROOT for a tree with no leaves)."""
        if self.leaf_count == 0:
            return EMPTY_TREE_ROOT
        return self._levels[-1][0]

    def leaf(self, index: int) -> bytes:
        return self._levels[0][index]

    def proof(self, leaf_index: int) -> MerkleProof:
        """Produce the inclusion proof for the leaf at ``leaf_index``."""
        if not 0 <= leaf_index < self.leaf_count:
            raise MerkleError(
                f"leaf index {leaf_index} out of range for tree of "
                f"{self.leaf_count} leaves"
            )
        steps: List[ProofStep] = []
        index = leaf_index
        for level in self._levels[:-1]:
            sibling_index = index ^ 1
            if sibling_index < len(level):
                steps.append(
                    ProofStep(
                        sibling=level[sibling_index],
                        sibling_on_left=sibling_index < index,
                    )
                )
            # Whether paired or promoted, the parent slot is index // 2.
            index //= 2
        return MerkleProof(
            leaf_index=leaf_index, tree_size=self.leaf_count, steps=tuple(steps)
        )


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Convenience: the Merkle root of ``leaves`` via the streaming hasher."""
    hasher = MerkleHasher()
    for leaf in leaves:
        hasher.append(leaf)
    return hasher.root()

"""Canonical row serialization for hashing (paper §3.2, Figure 4).

The serialized form of a row version is the input to the Merkle leaf hash.
Per the paper, it must embed not only the column *values* but also metadata
about how those values are interpreted — the number of columns, each column's
ordinal, its data type and declared length — so that an attacker who tampers
with table *metadata* (e.g. swapping an INT column's declared type with a
SMALLINT neighbour's) changes the recomputed hash even though the raw value
bytes are untouched.

NULL values are skipped entirely (this is what makes adding a nullable column
hash-compatible with old rows, §3.5.1); because each serialized column carries
its explicit ordinal, skipping NULLs cannot be abused to shift values between
columns.

Wire format (all integers big-endian)::

    magic     4 bytes   b"SLR1"
    count     uint16    number of non-NULL columns that follow
    repeated, in strictly ascending ordinal order:
        ordinal    uint16
        type_id    uint8     engine type identifier
        meta_len   uint8
        meta       bytes     declared type metadata (length, precision, ...)
        value_len  uint32
        value      bytes     canonical value encoding for the type

This module is deliberately independent of the engine's type system: the
engine supplies :class:`SerializedColumn` entries (ordinal, type identifier,
type metadata, canonical value bytes) and receives opaque bytes back.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import SerializationError

_MAGIC = b"SLR1"
_HEADER = struct.Struct(">4sH")
_COLUMN_FIXED = struct.Struct(">HBB")
_VALUE_LEN = struct.Struct(">I")


@dataclass(frozen=True)
class SerializedColumn:
    """One non-NULL column prepared for canonical serialization.

    ``type_meta`` carries whatever declared-type information affects value
    interpretation (e.g. VARCHAR max length, DECIMAL precision/scale) so that
    metadata tampering is detectable.
    """

    ordinal: int
    type_id: int
    type_meta: bytes
    value: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.ordinal <= 0xFFFF:
            raise SerializationError(f"column ordinal {self.ordinal} out of range")
        if not 0 <= self.type_id <= 0xFF:
            raise SerializationError(f"type id {self.type_id} out of range")
        if len(self.type_meta) > 0xFF:
            raise SerializationError("type metadata longer than 255 bytes")
        if len(self.value) > 0xFFFFFFFF:
            raise SerializationError("column value longer than 4 GiB")


class RowSerializer:
    """Serializes rows into the canonical hashable format.

    Stateless; exists as a class so the engine can hold one instance per
    table and, in the future, version the format per table.
    """

    def serialize(self, columns: Sequence[SerializedColumn]) -> bytes:
        """Serialize the non-NULL columns of one row version.

        ``columns`` must already exclude NULLs and be supplied in ascending
        ordinal order; both properties are validated because the hash is only
        canonical if every producer agrees on them.
        """
        parts: List[bytes] = [_HEADER.pack(_MAGIC, len(columns))]
        previous_ordinal = -1
        for column in columns:
            if column.ordinal <= previous_ordinal:
                raise SerializationError(
                    "columns must be serialized in strictly ascending ordinal "
                    f"order (ordinal {column.ordinal} after {previous_ordinal})"
                )
            previous_ordinal = column.ordinal
            parts.append(
                _COLUMN_FIXED.pack(column.ordinal, column.type_id, len(column.type_meta))
            )
            parts.append(column.type_meta)
            parts.append(_VALUE_LEN.pack(len(column.value)))
            parts.append(column.value)
        return b"".join(parts)


def deserialize_row_payload(payload: bytes) -> Tuple[SerializedColumn, ...]:
    """Parse a canonical row payload back into its column entries.

    Used by tests and forensic tooling; the verification path never needs to
    deserialize because it always re-serializes from the live row.
    """
    if len(payload) < _HEADER.size:
        raise SerializationError("payload shorter than header")
    magic, count = _HEADER.unpack_from(payload, 0)
    if magic != _MAGIC:
        raise SerializationError(f"bad magic {magic!r}")
    offset = _HEADER.size
    columns: List[SerializedColumn] = []
    for _ in range(count):
        if offset + _COLUMN_FIXED.size > len(payload):
            raise SerializationError("truncated column header")
        ordinal, type_id, meta_len = _COLUMN_FIXED.unpack_from(payload, offset)
        offset += _COLUMN_FIXED.size
        if offset + meta_len + _VALUE_LEN.size > len(payload):
            raise SerializationError("truncated type metadata")
        meta = payload[offset : offset + meta_len]
        offset += meta_len
        (value_len,) = _VALUE_LEN.unpack_from(payload, offset)
        offset += _VALUE_LEN.size
        if offset + value_len > len(payload):
            raise SerializationError("truncated column value")
        value = payload[offset : offset + value_len]
        offset += value_len
        columns.append(
            SerializedColumn(ordinal=ordinal, type_id=type_id, type_meta=meta, value=value)
        )
    if offset != len(payload):
        raise SerializationError(f"{len(payload) - offset} trailing bytes after last column")
    return tuple(columns)


def serialize_columns(columns: Iterable[SerializedColumn]) -> bytes:
    """Convenience wrapper over a throwaway :class:`RowSerializer`."""
    return RowSerializer().serialize(list(columns))


def serialize_rows(
    rows: Sequence[Sequence[SerializedColumn]],
) -> List[bytes]:
    """Serialize a statement's whole row set in one pass.

    Byte-for-byte equivalent to calling :meth:`RowSerializer.serialize` once
    per row, but with the struct packers and validation loop bound locally so
    a multi-row statement pays the per-call overhead once rather than once
    per row.  Each row may have a different NULL pattern; ordering and
    ordinal-uniqueness are validated exactly as in the single-row path.
    """
    header_pack = _HEADER.pack
    column_pack = _COLUMN_FIXED.pack
    value_len_pack = _VALUE_LEN.pack
    magic = _MAGIC
    join = b"".join
    out: List[bytes] = []
    for columns in rows:
        parts: List[bytes] = [header_pack(magic, len(columns))]
        previous_ordinal = -1
        for column in columns:
            ordinal = column.ordinal
            if ordinal <= previous_ordinal:
                raise SerializationError(
                    "columns must be serialized in strictly ascending ordinal "
                    f"order (ordinal {ordinal} after {previous_ordinal})"
                )
            previous_ordinal = ordinal
            meta = column.type_meta
            value = column.value
            parts.append(column_pack(ordinal, column.type_id, len(meta)))
            parts.append(meta)
            parts.append(value_len_pack(len(value)))
            parts.append(value)
        out.append(join(parts))
    return out

"""Cryptographic substrate: hashing, canonical serialization, Merkle trees, RSA.

This package contains everything the ledger layer needs to hash row versions,
aggregate them into Merkle roots, chain blocks, prove transaction inclusion,
and sign block roots for non-repudiation receipts (paper §3.2, §3.3, §5.1).
"""

from repro.crypto.hashing import (
    HASH_SIZE,
    hash_block,
    hash_interior,
    hash_leaf,
    hash_transaction_entry,
    sha256,
)
from repro.crypto.merkle import (
    EMPTY_TREE_ROOT,
    MerkleHasher,
    MerkleProof,
    MerkleTree,
    ProofStep,
)
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.crypto.serialization import (
    RowSerializer,
    SerializedColumn,
    deserialize_row_payload,
)

__all__ = [
    "HASH_SIZE",
    "sha256",
    "hash_leaf",
    "hash_interior",
    "hash_block",
    "hash_transaction_entry",
    "EMPTY_TREE_ROOT",
    "MerkleHasher",
    "MerkleTree",
    "MerkleProof",
    "ProofStep",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "RowSerializer",
    "SerializedColumn",
    "deserialize_row_payload",
]

"""Pure-Python RSA signatures for transaction receipts (paper §5.1).

The paper signs each closed block's Merkle root once, so that a receipt
(Merkle proof + signed block root) proves a transaction's inclusion even if
the ledger is later destroyed.  The production system would use a platform
crypto library; this reproduction has no third-party crypto dependency, so we
implement textbook RSA with Miller-Rabin key generation and deterministic
PKCS#1 v1.5-style padding over SHA-256 digests.

This is adequate for reproducing the paper's *cost model* (asymmetric signing
is ~10^3-10^4× more expensive than hashing, which is exactly why the paper
amortizes one signature over a 100K-transaction block) and its verification
semantics.  It is not hardened against side channels and must not be used to
protect real secrets.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import SignatureError

# Deterministic ASN.1 DigestInfo prefix for SHA-256 (RFC 8017 §9.2).
_SHA256_DIGEST_INFO = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def _is_probable_prime(candidate: int, rng: random.Random, rounds: int = 40) -> bool:
    """Miller-Rabin primality test."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random probable prime with the exact bit length requested."""
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force bit length and oddness
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key: verification half of a key pair."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return True iff ``signature`` is a valid signature of ``message``."""
        if len(signature) != self.byte_length:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            return False
        recovered = pow(sig_int, self.e, self.n)
        expected = int.from_bytes(_pad_digest(message, self.byte_length), "big")
        return recovered == expected

    def to_dict(self) -> dict:
        return {"n": hex(self.n), "e": self.e}

    @classmethod
    def from_dict(cls, data: dict) -> "RsaPublicKey":
        return cls(n=int(data["n"], 16), e=int(data["e"]))


@dataclass(frozen=True)
class RsaKeyPair:
    """RSA key pair; holds the private exponent alongside the public key."""

    public: RsaPublicKey
    d: int

    def sign(self, message: bytes) -> bytes:
        """Sign ``message`` (hashed with SHA-256, PKCS#1 v1.5 padding)."""
        k = self.public.byte_length
        padded = int.from_bytes(_pad_digest(message, k), "big")
        if padded >= self.public.n:
            raise SignatureError("modulus too small for PKCS#1 padding")
        signature = pow(padded, self.d, self.public.n)
        return signature.to_bytes(k, "big")


def _pad_digest(message: bytes, k: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message) into ``k`` bytes."""
    digest_info = _SHA256_DIGEST_INFO + hashlib.sha256(message).digest()
    padding_len = k - len(digest_info) - 3
    if padding_len < 8:
        raise SignatureError(
            f"modulus of {k} bytes too small to pad a SHA-256 DigestInfo"
        )
    return b"\x00\x01" + b"\xff" * padding_len + b"\x00" + digest_info


def generate_keypair(
    bits: int = 1024, seed: Optional[int] = None
) -> RsaKeyPair:
    """Generate an RSA key pair.

    ``seed`` makes generation deterministic (tests, reproducible examples);
    leave it None for a system-entropy key.  512 bits is the practical floor
    for signing SHA-256 DigestInfo payloads.
    """
    if bits < 512:
        raise SignatureError("key size below 512 bits cannot sign SHA-256 digests")
    rng = random.Random(seed) if seed is not None else random.SystemRandom()
    e = 65537
    while True:
        p = _generate_prime(bits // 2, rng)
        q = _generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; rare, retry
        return RsaKeyPair(public=RsaPublicKey(n=n, e=e), d=d)

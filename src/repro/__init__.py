"""repro — a reproduction of *SQL Ledger* (SIGMOD 2021).

A from-scratch Python implementation of cryptographically verifiable ledger
tables inside a relational database engine: historical data retention,
per-transaction Merkle hashing of modified rows, a blockchain of transaction
blocks (the Database Ledger), externally storable database digests, and a
verification process that detects any tampering — including storage-level
attacks that bypass the database APIs.

Public entry points::

    from repro import LedgerDatabase

    db = LedgerDatabase.open("/path/to/dbdir")
    db.sql("CREATE TABLE accounts (name VARCHAR(32), balance INT) "
           "WITH (LEDGER = ON)")
    db.sql("INSERT INTO accounts VALUES ('Nick', 100)")
    digest = db.generate_digest()
    report = db.verify([digest])
"""

from repro.errors import (
    LedgerError,
    ReproError,
    VerificationFailedError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "LedgerError",
    "VerificationFailedError",
    "LedgerDatabase",
    "__version__",
]


def __getattr__(name: str):
    # LedgerDatabase pulls in the whole stack; import it lazily so that the
    # crypto/engine subpackages stay importable in isolation.
    if name == "LedgerDatabase":
        from repro.core.ledger_database import LedgerDatabase

        return LedgerDatabase
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

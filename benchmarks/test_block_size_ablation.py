"""Ablation (§3.3.1): block size trade-offs.

The paper fixes 100K transactions per block to amortize block-building cost
over many transactions.  This ablation sweeps the block size and shows the
trade: small blocks close constantly (hurting append throughput), large
blocks amortize; verification cost is dominated by row hashing either way.
"""

import pytest

from repro.engine.schema import Column, TableSchema
from repro.engine.types import INT, VARCHAR
from repro.workloads.harness import (
    format_block_size_ablation,
    run_block_size_ablation,
)

TRANSACTIONS = 200
BLOCK_SIZES = [10, 100, 1000]


def _build(factory, block_size):
    db = factory(block_size=block_size)
    db.create_ledger_table(
        TableSchema(
            "events",
            [Column("id", INT, nullable=False),
             Column("v", VARCHAR(32), nullable=False)],
            primary_key=["id"],
        )
    )
    return db


def _append(db):
    for i in range(TRANSACTIONS):
        txn = db.begin()
        db.insert(txn, "events", [[i, f"value{i}"]])
        db.commit(txn)


@pytest.mark.benchmark(group="blocksize-append")
@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_append_throughput(benchmark, fresh_db_factory, block_size):
    benchmark.pedantic(
        _append,
        setup=lambda: ((_build(fresh_db_factory, block_size),), {}),
        rounds=3,
    )
    benchmark.extra_info["block_size"] = block_size
    benchmark.extra_info["transactions_per_round"] = TRANSACTIONS


@pytest.mark.benchmark(group="blocksize-digest")
@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_digest_generation(benchmark, fresh_db_factory, block_size):
    db = _build(fresh_db_factory, block_size)
    _append(db)

    # Repeated digests over a closed chain measure the steady-state cost of
    # frequent digest generation (the paper's every-few-seconds cadence).
    db.generate_digest()
    benchmark(db.generate_digest)
    benchmark.extra_info["block_size"] = block_size


@pytest.mark.benchmark(group="blocksize-summary")
def test_blocksize_summary(benchmark):
    results = run_block_size_ablation(
        block_sizes=tuple(BLOCK_SIZES), transactions=TRANSACTIONS
    )
    print()
    print(format_block_size_ablation(results))
    by_size = {row[0]: row for row in results}
    # Larger blocks must not lose to tiny blocks on append throughput.
    assert by_size[1000][1] > by_size[10][1] * 0.9
    # Tiny blocks produce proportionally many blocks.
    assert by_size[10][4] > by_size[1000][4]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Figure 9: ledger verification time vs. transaction count (§4.2).

Each transaction updates five 260-byte rows; verification recomputes every
hash in the system.  The paper's claim is linear scaling in the number of
transactions/row versions; the summary asserts it.
"""

import pytest

from repro.workloads.harness import format_fig9, run_fig9
from repro.workloads.microbench import (
    make_row,
    run_five_row_update_transactions,
    wide_row_schema,
)

TRANSACTION_COUNTS = (100, 300, 900)


def _build_verified_ledger(factory, transactions):
    db = factory(block_size=1000)
    db.create_ledger_table(wide_row_schema("wide", 0))
    rows = transactions * 5
    txn = db.begin("loader")
    db.insert(txn, "wide", [make_row(i) for i in range(1, rows + 1)])
    db.commit(txn)
    run_five_row_update_transactions(db, "wide", transactions)
    digest = db.generate_digest()
    return db, digest


@pytest.mark.benchmark(group="fig9-verification")
@pytest.mark.parametrize("transactions", list(TRANSACTION_COUNTS))
def test_verification_time(benchmark, fresh_db_factory, transactions):
    db, digest = _build_verified_ledger(fresh_db_factory, transactions)

    def verify():
        report = db.verify([digest])
        assert report.ok, report.summary()
        return report

    report = benchmark.pedantic(verify, rounds=3)
    benchmark.extra_info["transactions"] = transactions
    benchmark.extra_info["row_versions_hashed"] = report.row_versions_hashed


@pytest.mark.benchmark(group="fig9-summary")
def test_fig9_summary(benchmark):
    """Regenerate Figure 9 and assert near-linear scaling."""
    results = run_fig9(TRANSACTION_COUNTS)
    print()
    print(format_fig9(results))
    (small_n, small_t), *_, (large_n, large_t) = results
    scale = large_n / small_n
    observed = large_t / small_t
    benchmark.extra_info["scaling"] = {
        "transactions_ratio": scale,
        "time_ratio": round(observed, 2),
    }
    # Linear scaling within generous bounds (sub-linear constant effects and
    # noise allowed; super-linear blowup is the failure mode to catch).
    assert observed < scale * 2.5, "verification scales worse than linearly"
    assert observed > scale * 0.25, "timing anomaly: verification too fast"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""§4.1 comparison: SQL Ledger vs. a Fabric-like blockchain baseline.

The paper reports that SQL Ledger sustains >20× the throughput of
state-of-the-art permissioned blockchains at orders-of-magnitude lower
latency.  The baseline here executes a real endorse→order→validate pipeline
(genuine RSA signatures at each hop, simulated network/consensus delays);
SQL Ledger runs the same simple transfer transactions natively.
"""

import pytest

from repro.engine.schema import Column, TableSchema
from repro.engine.types import INT, VARCHAR
from repro.workloads.blockchain_baseline import BlockchainNetwork
from repro.workloads.harness import format_blockchain, run_blockchain_comparison

TRANSACTIONS = 200


@pytest.mark.benchmark(group="blockchain-comparison")
def test_sql_ledger_simple_transfers(benchmark, fresh_db_factory):
    def build():
        db = fresh_db_factory()
        db.create_ledger_table(
            TableSchema(
                "transfers",
                [Column("id", INT, nullable=False),
                 Column("payee", VARCHAR(32), nullable=False),
                 Column("amount", INT, nullable=False)],
                primary_key=["id"],
            )
        )
        return db

    def run(db):
        for i in range(TRANSACTIONS):
            txn = db.begin("teller")
            db.insert(txn, "transfers", [[i, f"payee{i % 97}", i % 1000]])
            db.commit(txn)

    benchmark.pedantic(run, setup=lambda: ((build(),), {}), rounds=3)
    benchmark.extra_info["transactions_per_round"] = TRANSACTIONS


@pytest.mark.benchmark(group="blockchain-comparison")
def test_blockchain_baseline_transfers(benchmark):
    payloads = [f"transfer:{i}:{i % 1000}".encode() for i in range(TRANSACTIONS)]

    def run(network):
        return network.run_workload(payloads)

    stats = benchmark.pedantic(
        run, setup=lambda: ((BlockchainNetwork(),), {}), rounds=3
    )
    benchmark.extra_info["simulated_network_seconds"] = round(
        stats.simulated_network_seconds, 3
    )
    benchmark.extra_info["mean_latency_ms"] = round(stats.mean_latency_ms, 1)


@pytest.mark.benchmark(group="blockchain-summary")
def test_blockchain_summary(benchmark):
    """Regenerate the §4.1 comparison and assert the paper's shape."""
    results = run_blockchain_comparison(transactions=TRANSACTIONS)
    print()
    print(format_blockchain(results))
    ledger = results["sql_ledger"]
    chain = results["blockchain"]
    benchmark.extra_info["throughput_ratio"] = round(
        ledger["throughput_tps"] / chain["throughput_tps"], 1
    )
    # Paper: >20x throughput and latency orders of magnitude lower.
    assert ledger["throughput_tps"] > 20 * chain["throughput_tps"]
    assert ledger["mean_latency_ms"] * 20 < chain["mean_latency_ms"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

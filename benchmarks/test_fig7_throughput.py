"""Figure 7: throughput of SQL Ledger vs. the plain engine (§4.1.1).

Four benchmarks (TPC-C/TPC-E × ledger/regular) measure transactions per
second; the summary benchmark reruns the comparison via the shared harness,
prints the Figure-7-style table, and asserts the paper's shape: the ledger
is slower in both workloads, and the update-intensive TPC-C pays more than
the read-heavy TPC-E.
"""

import pytest

from repro.workloads.harness import format_fig7, run_fig7
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpce import TpceWorkload

TPCC_TRANSACTIONS = 300
TPCE_TRANSACTIONS = 450


def _build_tpcc(factory, ledger):
    workload = TpccWorkload(factory(), ledger=ledger)
    workload.create_schema()
    workload.load()
    workload.run(20)
    return workload


def _build_tpce(factory, ledger):
    workload = TpceWorkload(factory(), ledger=ledger)
    workload.create_schema()
    workload.load()
    workload.run(20)
    return workload


@pytest.mark.benchmark(group="fig7-tpcc")
@pytest.mark.parametrize("ledger", [True, False], ids=["ledger", "regular"])
def test_tpcc_throughput(benchmark, fresh_db_factory, ledger):
    benchmark.pedantic(
        lambda w: w.run(TPCC_TRANSACTIONS),
        setup=lambda: ((_build_tpcc(fresh_db_factory, ledger),), {}),
        rounds=3,
    )
    benchmark.extra_info["transactions_per_round"] = TPCC_TRANSACTIONS


@pytest.mark.benchmark(group="fig7-tpce")
@pytest.mark.parametrize("ledger", [True, False], ids=["ledger", "regular"])
def test_tpce_throughput(benchmark, fresh_db_factory, ledger):
    benchmark.pedantic(
        lambda w: w.run(TPCE_TRANSACTIONS),
        setup=lambda: ((_build_tpce(fresh_db_factory, ledger),), {}),
        rounds=3,
    )
    benchmark.extra_info["transactions_per_round"] = TPCE_TRANSACTIONS


@pytest.mark.benchmark(group="fig7-summary")
def test_fig7_summary(benchmark):
    """Regenerate Figure 7 and check its shape."""
    results = run_fig7(
        tpcc_transactions=TPCC_TRANSACTIONS,
        tpce_transactions=TPCE_TRANSACTIONS,
        rounds=3,
    )
    print()
    print(format_fig7(results))
    for workload, row in results.items():
        benchmark.extra_info[workload] = round(row["difference_pct"], 1)
        # The ledger must cost something in both workloads (allowing a
        # small noise margin on a shared machine).
        assert row["difference_pct"] < 5.0, (
            f"{workload}: ledger unexpectedly faster than regular"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

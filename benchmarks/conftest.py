"""Shared fixtures and helpers for the benchmark suite.

Every benchmark file regenerates one table/figure from the paper's
evaluation (§4) or one ablation called out in DESIGN.md.  The same
measurement logic backs the standalone harness
(``python -m repro.workloads.harness``), which prints the paper-style
tables recorded in EXPERIMENTS.md.
"""

import datetime as dt

import pytest

from repro.core.ledger_database import LedgerDatabase
from repro.engine.clock import LogicalClock


@pytest.fixture
def fresh_db_factory(tmp_path):
    """Factory building isolated ledger databases under the test tmpdir."""
    counter = {"n": 0}

    def make(block_size: int = 100_000) -> LedgerDatabase:
        counter["n"] += 1
        return LedgerDatabase.open(
            str(tmp_path / f"db{counter['n']}"),
            block_size=block_size,
            clock=LogicalClock(step=dt.timedelta(milliseconds=1)),
        )

    return make

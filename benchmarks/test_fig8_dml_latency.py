"""Figure 8: DML latency per operation type and index count (§4.1.2).

Single-row INSERT/UPDATE/DELETE on a table with 260-byte rows and 0/1/2/4
nonclustered indexes, on regular vs. ledger tables.  The paper's additive
cost model — insert overhead ≈ one row hash, delete ≈ hash + history insert,
update ≈ two hashes + history insert — is asserted by the summary.
"""

import pytest

from repro.workloads.harness import format_fig8, run_fig8
from repro.workloads.microbench import SingleRowDriver, wide_row_schema

OPERATIONS = 100


def _build_driver(factory, ledger, index_count):
    db = factory()
    schema = wide_row_schema("wide", index_count)
    if ledger:
        db.create_ledger_table(schema)
    else:
        db.create_table(schema)
    driver = SingleRowDriver(db, "wide")
    driver.preload(3 * OPERATIONS + 10)
    return driver


def _run_op(driver, operation):
    if operation == "insert":
        for _ in range(OPERATIONS):
            driver.insert_one()
    elif operation == "update":
        for i in range(1, OPERATIONS + 1):
            driver.update_one(i)
    else:
        for i in range(OPERATIONS + 1, 2 * OPERATIONS + 1):
            driver.delete_one(i)


@pytest.mark.benchmark(group="fig8-dml")
@pytest.mark.parametrize("index_count", [0, 2])
@pytest.mark.parametrize("operation", ["insert", "update", "delete"])
@pytest.mark.parametrize("ledger", [True, False], ids=["ledger", "regular"])
def test_single_row_dml(benchmark, fresh_db_factory, ledger, operation,
                        index_count):
    benchmark.pedantic(
        _run_op,
        setup=lambda: (
            (_build_driver(fresh_db_factory, ledger, index_count), operation),
            {},
        ),
        rounds=3,
    )
    benchmark.extra_info["rows_per_round"] = OPERATIONS


@pytest.mark.benchmark(group="fig8-summary")
def test_fig8_summary(benchmark):
    """Regenerate Figure 8 and check the overhead ordering."""
    results = run_fig8(index_counts=(0, 1, 2, 4), operations_per_round=OPERATIONS,
                       rounds=3)
    print()
    print(format_fig8(results))

    def overhead(operation):
        deltas = [
            results[(operation, n, "ledger")] - results[(operation, n, "regular")]
            for n in (0, 1, 2, 4)
        ]
        return sum(deltas) / len(deltas)

    insert_overhead = overhead("INSERT")
    update_overhead = overhead("UPDATE")
    delete_overhead = overhead("DELETE")
    benchmark.extra_info["overhead_us"] = {
        "INSERT": round(insert_overhead, 1),
        "UPDATE": round(update_overhead, 1),
        "DELETE": round(delete_overhead, 1),
    }
    # Paper's ordering: insert < delete < update (update ≈ 2·insert + delete
    # history cost).  Allow generous noise margins.
    assert insert_overhead > 0
    assert delete_overhead > insert_overhead * 0.8
    assert update_overhead > insert_overhead
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Ablation (§3.2.1): the streaming Merkle algorithm.

The paper's design point: computing per-transaction Merkle roots while rows
are updated must be O(N) time / O(log N) space, and savepoint snapshots must
be O(log N) so partial rollbacks stay cheap.  The benchmarks compare the
streaming hasher to the materialized tree and measure snapshot cost.
"""

import math

import pytest

from repro.crypto.hashing import sha256
from repro.crypto.merkle import MerkleHasher, MerkleTree
from repro.workloads.harness import format_merkle_ablation, run_merkle_ablation

LEAF_COUNTS = [1_000, 10_000]


def _leaves(count):
    return [sha256(i.to_bytes(8, "big")) for i in range(count)]


@pytest.mark.benchmark(group="merkle-root")
@pytest.mark.parametrize("count", LEAF_COUNTS)
def test_streaming_root(benchmark, count):
    leaves = _leaves(count)

    def stream():
        hasher = MerkleHasher()
        for leaf in leaves:
            hasher.append(leaf)
        return hasher.root()

    benchmark(stream)
    benchmark.extra_info["leaves"] = count


@pytest.mark.benchmark(group="merkle-root")
@pytest.mark.parametrize("count", LEAF_COUNTS)
def test_materialized_root(benchmark, count):
    leaves = _leaves(count)
    benchmark(lambda: MerkleTree(leaves).root())
    benchmark.extra_info["leaves"] = count


@pytest.mark.benchmark(group="merkle-savepoint")
def test_savepoint_snapshot_cost(benchmark):
    """Snapshot + restore on a large in-flight tree must stay O(log N)."""
    hasher = MerkleHasher()
    for leaf in _leaves(50_000):
        hasher.append(leaf)

    def snapshot_cycle():
        state = hasher.snapshot()
        hasher.restore(state)
        return state

    benchmark(snapshot_cycle)
    benchmark.extra_info["leaves"] = 50_000
    benchmark.extra_info["state_digests"] = hasher.state_size()


@pytest.mark.benchmark(group="merkle-summary")
def test_merkle_summary(benchmark):
    results = run_merkle_ablation(leaf_counts=(1_000, 10_000, 100_000))
    print()
    print(format_merkle_ablation(results))
    for count, _, state_size, _, full_nodes in results:
        bound = math.ceil(math.log2(count)) + 1
        assert state_size <= bound, "streaming state exceeded O(log N)"
        assert full_nodes >= count  # the materialized tree stores every level
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

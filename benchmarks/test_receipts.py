"""Ablation (§5.1): receipt generation — one signature per block.

The paper rejects per-transaction signing as too expensive and instead signs
each block's root once, deriving per-transaction receipts from Merkle
proofs.  These benchmarks measure both schemes and assert the amortized
scheme wins.
"""

import pytest

from repro.crypto.rsa import generate_keypair
from repro.engine.schema import Column, TableSchema
from repro.engine.types import INT
from repro.workloads.harness import format_receipts_ablation, run_receipts_ablation

TRANSACTIONS = 48


def _seeded_db(factory):
    db = factory(block_size=TRANSACTIONS + 16)
    db.set_signing_key(generate_keypair(bits=1024, seed=2024))
    db.create_ledger_table(
        TableSchema(
            "deposits",
            [Column("id", INT, nullable=False),
             Column("amount", INT, nullable=False)],
            primary_key=["id"],
        )
    )
    tids = []
    for i in range(TRANSACTIONS):
        txn = db.begin("teller")
        db.insert(txn, "deposits", [[i, i * 10]])
        db.commit(txn)
        tids.append(txn.tid)
    db.generate_digest()  # closes the block receipts anchor to
    return db, tids


@pytest.mark.benchmark(group="receipts")
def test_amortized_receipts(benchmark, fresh_db_factory):
    db, tids = _seeded_db(fresh_db_factory)

    def issue_all():
        return [db.transaction_receipt(tid) for tid in tids]

    receipts = benchmark(issue_all)
    public = db.signing_key().public
    assert all(r.verify(public) for r in receipts)
    benchmark.extra_info["receipts_per_call"] = TRANSACTIONS


@pytest.mark.benchmark(group="receipts")
def test_naive_per_transaction_signatures(benchmark, fresh_db_factory):
    db, tids = _seeded_db(fresh_db_factory)
    key = db.signing_key()
    entries = [db.ledger.transaction_entry(tid) for tid in tids]

    def sign_all():
        return [key.sign(e.canonical_bytes()) for e in entries]

    benchmark(sign_all)
    benchmark.extra_info["signatures_per_call"] = TRANSACTIONS


@pytest.mark.benchmark(group="receipts-summary")
def test_receipts_summary(benchmark):
    results = run_receipts_ablation(transactions=TRANSACTIONS)
    print()
    print(format_receipts_ablation(results))
    assert (
        results["amortized_receipts_per_s"] > results["naive_signatures_per_s"]
    ), "per-block signing must beat per-transaction signing"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
